package testbed

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// deploy runs a full small deployment to bare metal and returns the testbed
// and its result.
func deploy(t *testing.T, cfg Config) (*Testbed, *Node, *BMcastResult) {
	t.Helper()
	tb := New(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second
	var res *BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, n, core.DefaultConfig(), quickBoot(cfg))
		if err != nil {
			t.Error(err)
			tb.K.Stop()
			return
		}
		tb.WaitBareMetal(p, n, r)
		res = r
		tb.K.Stop()
	})
	tb.K.Run()
	if res == nil {
		t.Fatal("deployment did not complete")
	}
	return tb, n, res
}

// chromeEvent mirrors the trace-event JSON fields the tests inspect.
type chromeJSON struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestDeployTraceExport(t *testing.T) {
	cfg := small()
	cfg.EnableTrace = true
	tb, _, res := deploy(t, cfg)
	if res.Trace != tb.Trace || res.Trace == nil {
		t.Fatal("result does not carry the testbed's trace recorder")
	}

	var buf bytes.Buffer
	if err := tb.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeJSON
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	byName := map[string]int{}
	byCat := map[string]int{}
	byPh := map[string]int{}
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "X", "i", "M", "s", "f":
		default:
			t.Fatalf("unexpected phase type %q in event %q", e.Ph, e.Name)
		}
		byName[e.Name]++
		byCat[e.Cat]++
		byPh[e.Ph]++
	}
	// Causal flow events come in start/finish pairs.
	if byPh["s"] == 0 || byPh["s"] != byPh["f"] {
		t.Fatalf("flow events unpaired: %d starts, %d finishes", byPh["s"], byPh["f"])
	}
	for _, phase := range []string{"Initialization", "Deployment", "Devirtualization", "BareMetal"} {
		if byName[phase] != 1 {
			t.Fatalf("phase span %q appears %d times, want 1", phase, byName[phase])
		}
	}
	if byCat["mediator"] == 0 {
		t.Fatal("no mediator spans in the trace")
	}
	if byCat["aoe"] == 0 {
		t.Fatal("no AoE spans in the trace")
	}

	// The open BareMetal span must be exported and flagged unfinished.
	for _, e := range ct.TraceEvents {
		if e.Name == "BareMetal" && e.Ph == "X" {
			if e.Args["unfinished"] != true {
				t.Fatalf("open BareMetal span args = %v, want unfinished=true", e.Args)
			}
		}
	}

	// Phase spans are ordered and contiguous in the queryable view too.
	var prev sim.Time
	for _, phase := range []string{"Initialization", "Deployment", "Devirtualization"} {
		sp := res.Trace.FirstSpan(phase)
		if sp == nil || sp.Open {
			t.Fatalf("phase span %q missing or still open", phase)
		}
		if sp.Start < prev {
			t.Fatalf("phase %q starts at %v, before previous phase ended (%v)", phase, sp.Start, prev)
		}
		prev = sp.Stop
	}
	bm := res.Trace.FirstSpan("BareMetal")
	if bm == nil || !bm.Open {
		t.Fatal("BareMetal span missing or unexpectedly closed")
	}
}

func TestDevirtTraceInvariant(t *testing.T) {
	cfg := small()
	cfg.EnableTrace = true
	_, n, res := deploy(t, cfg)

	devirt := res.Trace.FirstSpan("Devirtualization")
	if devirt == nil || devirt.Open {
		t.Fatal("no completed Devirtualization span")
	}
	if devirt.Stop != n.VMM.DevirtedAt {
		t.Fatalf("Devirtualization span ends at %v, VMM says %v", devirt.Stop, n.VMM.DevirtedAt)
	}

	// Seamless hand-off: once de-virtualization completes, no mediated I/O
	// may start and no VM exit may occur.
	for _, sp := range res.Trace.SpansInCat("mediator") {
		if sp.Start >= devirt.Stop {
			t.Fatalf("mediator span %q starts at %v, after de-virtualization ended at %v",
				sp.Name, sp.Start, devirt.Stop)
		}
		if sp.Open {
			t.Fatalf("mediator span %q still open after deployment", sp.Name)
		}
	}
	for _, ev := range res.Trace.EventsInCat("cpuvirt") {
		if ev.Time > devirt.Stop {
			t.Fatalf("vm-exit event at %v, after de-virtualization ended at %v", ev.Time, devirt.Stop)
		}
	}
	// There was mediation and there were exits — the invariant is not
	// vacuous.
	if len(res.Trace.SpansInCat("mediator")) == 0 || len(res.Trace.EventsInCat("cpuvirt")) == 0 {
		t.Fatal("expected mediator spans and vm-exit events during deployment")
	}
}

// TestCausalEdges pins the causal DAG a traced deployment records: the
// guest boot span roots under a phase span, mediated commands parent
// under the boot, AoE round trips parent under the mediated command that
// issued them, and every vblade serve span links back across the network
// to the initiator span that sent the request.
func TestCausalEdges(t *testing.T) {
	cfg := small()
	cfg.EnableTrace = true
	_, _, res := deploy(t, cfg)
	tr := res.Trace

	byID := map[int64]*trace.Span{}
	for _, s := range tr.Spans() {
		if s.ID == 0 {
			t.Fatalf("span %q has no ID", s.Name)
		}
		if byID[s.ID] != nil {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		byID[s.ID] = s
	}

	boot := tr.FirstSpan("boot")
	if boot == nil {
		t.Fatal("no guest boot span")
	}
	if p := byID[boot.Parent]; p == nil || p.Cat != "phase" {
		t.Fatalf("boot span parent = %+v, want a phase span", p)
	}

	// Mediated guest commands parent under the boot span; the AoE round
	// trips they trigger parent under them in turn.
	var bootChildren, aoeUnderMediator int
	for _, sp := range tr.SpansInCat("mediator") {
		if sp.Parent == boot.ID {
			bootChildren++
		}
	}
	if bootChildren == 0 {
		t.Fatal("no mediator span parents under the guest boot span")
	}
	for _, sp := range tr.SpansInCat("aoe") {
		if sp.Name != "read" && sp.Name != "write" {
			continue
		}
		if p := byID[sp.Parent]; p != nil && p.Cat == "mediator" {
			aoeUnderMediator++
		}
	}
	if aoeUnderMediator == 0 {
		t.Fatal("no AoE round trip parents under a mediated command")
	}

	// Background-copy AoE traffic must NOT parent under mediator spans —
	// it hangs off the vmm bg-fetch spans, keeping the guest's critical
	// path clean.
	for _, sp := range tr.SpansNamed("bg-fetch") {
		if p := byID[sp.Parent]; p == nil || p.Cat != "phase" {
			t.Fatalf("bg-fetch parent = %+v, want the phase span", p)
		}
	}

	// Every serve span on the server links back to an initiator-side span
	// via a flow edge.
	serves := tr.SpansNamed("serve")
	if len(serves) == 0 {
		t.Fatal("no serve spans recorded")
	}
	for _, sp := range serves {
		src := byID[sp.FlowFrom]
		if src == nil || src.Cat != "aoe" || src.Node == sp.Node {
			t.Fatalf("serve span flow-from = %+v, want a client-side aoe span", src)
		}
	}

	// Phase spans chain through flow edges.
	dep := tr.FirstSpan("Deployment")
	ini := tr.FirstSpan("Initialization")
	if dep == nil || ini == nil || dep.FlowFrom != ini.ID {
		t.Fatal("Deployment phase does not flow from Initialization")
	}
}

func TestMetricsSnapshotSubsystems(t *testing.T) {
	cfg := small()
	tb, n, _ := deploy(t, cfg)
	snap := tb.Metrics.Snapshot()

	// One run must populate all the major subsystems in one registry.
	var exits float64
	for _, s := range snap.Prefixed("cpuvirt.exits") {
		exits += s.Value
	}
	if exits == 0 {
		t.Fatal("no cpuvirt exits recorded in the registry")
	}
	if got := snap.CounterValue("mediator.guest_commands", metrics.L("node", n.M.Name)); got == 0 {
		t.Fatal("no mediator guest commands recorded")
	}
	if got := snap.CounterValue("aoe.requests", metrics.L("node", n.M.Name)); got == 0 {
		t.Fatal("no AoE requests recorded")
	}
	if _, ok := snap.Get("aoe.retransmits", metrics.L("node", n.M.Name)); !ok {
		t.Fatal("AoE retransmit counter not registered")
	}
	var linkBytes float64
	for _, s := range snap.Prefixed("ethernet.bytes") {
		linkBytes += s.Value
	}
	if linkBytes == 0 {
		t.Fatal("no ethernet link bytes recorded")
	}
	if got := snap.CounterValue("vmm.copied_bytes", metrics.L("node", n.M.Name)); got == 0 {
		t.Fatal("no background-copied bytes recorded")
	}
	if got := snap.CounterValue("vblade.requests", metrics.L("node", "server")); got == 0 {
		t.Fatal("no vblade requests recorded")
	}
	// The recovery instruments are registered on every run, even without
	// faults: zero is a meaningful reading.
	if _, ok := snap.Get("aoe.failovers", metrics.L("node", n.M.Name)); !ok {
		t.Fatal("AoE failover counter not registered")
	}
	if _, ok := snap.Get("vmm.watchdog_fires", metrics.L("node", n.M.Name)); !ok {
		t.Fatal("VMM watchdog counter not registered")
	}

	// The text dump renders without error and mentions each subsystem.
	var b strings.Builder
	snap.WriteText(&b)
	for _, want := range []string{"cpuvirt.", "mediator.", "aoe.", "ethernet.", "vmm.", "vblade."} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("metrics dump missing %q", want)
		}
	}
}

// TestChaosMetricsPopulated runs a deployment under a fault schedule that
// crashes the primary server mid-run and checks that the chaos
// instruments — injected faults, server crashes, AoE failovers — all land
// in the shared registry.
func TestChaosMetricsPopulated(t *testing.T) {
	cfg := small()
	tb := New(cfg)
	tb.AddSecondaryServer(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second

	sched, err := faults.Parse("3s crash server; 5s loss node0.vmm 0.02; 8s loss node0.vmm 0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NewFaultInjector().Apply(sched); err != nil {
		t.Fatal(err)
	}

	var res *BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, n, core.DefaultConfig(), quickBoot(cfg))
		if err != nil {
			t.Error(err)
			tb.K.Stop()
			return
		}
		tb.WaitBareMetal(p, n, r)
		res = r
		tb.K.Stop()
	})
	tb.K.RunUntil(sim.Time(2 * sim.Hour))
	if res == nil {
		t.Fatal("deployment did not complete under the fault schedule")
	}

	snap := tb.Metrics.Snapshot()
	if got := snap.CounterValue("faults.injected"); got != 3 {
		t.Fatalf("faults.injected = %v, want 3", got)
	}
	if got := snap.CounterValue("vblade.crashes", metrics.L("node", "server")); got != 1 {
		t.Fatalf("vblade.crashes = %v, want 1", got)
	}
	if got := snap.CounterValue("aoe.failovers", metrics.L("node", n.M.Name)); got == 0 {
		t.Fatal("no AoE failovers recorded despite a primary crash")
	}
	if got := snap.CounterValue("vmm.watchdog_fires", metrics.L("node", n.M.Name)); got != 0 {
		t.Fatalf("watchdog fired %v times on a recoverable run", got)
	}
	if _, err := tb.VerifyDeployment(n); err != nil {
		t.Fatal(err)
	}
}

// TestLossAppliedToVMMLink pins the -loss semantics: loss injected on the
// node's VMM-side link forces AoE retransmission but the deployment still
// completes (and the guest link stays clean).
func TestLossAppliedToVMMLink(t *testing.T) {
	cfg := small()
	tb := New(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second
	n.VMMLink.SetLossRate(0.05)
	var res *BMcastResult
	tb.K.Spawn("deploy", func(p *sim.Proc) {
		r, err := tb.DeployBMcast(p, n, core.DefaultConfig(), quickBoot(cfg))
		if err != nil {
			t.Error(err)
			tb.K.Stop()
			return
		}
		tb.WaitBareMetal(p, n, r)
		res = r
		tb.K.Stop()
	})
	tb.K.Run()
	if res == nil {
		t.Fatal("deployment did not complete under loss")
	}
	if got := n.VMM.Initiator().Retransmits.Value(); got == 0 {
		t.Fatal("5% loss on the VMM link produced no retransmits")
	}
	if n.VMMLink.Dropped() == 0 {
		t.Fatal("VMM link dropped no frames")
	}
	if n.GuestLink.Dropped() != 0 {
		t.Fatalf("guest link dropped %d frames; loss must only hit the VMM link", n.GuestLink.Dropped())
	}
	if _, err := tb.VerifyDeployment(n); err != nil {
		t.Fatal(err)
	}
}
