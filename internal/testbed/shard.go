package testbed

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Sharded-testbed plumbing (DESIGN.md §13). The partition is fixed by the
// model: domain 0 is the hub (storage servers, control plane, fault
// bookkeeping), domain 1+i is node i. Config.Shards only chooses how many
// workers execute the domains, which cannot affect simulation output.

// NodeKernel returns the shard-domain kernel node n runs on (the hub
// kernel on a single-threaded testbed).
func (tb *Testbed) NodeKernel(n *Node) *sim.Kernel { return n.M.K }

// NodeIndex returns n's index in Nodes, or -1.
func (tb *Testbed) NodeIndex(n *Node) int {
	for i, cand := range tb.Nodes {
		if cand == n {
			return i
		}
	}
	return -1
}

// RunOnNode spawns fn as a process on node n's domain, scheduled through
// the cross-domain post path so it is legal from hub events or processes.
// On a single-threaded testbed it spawns directly.
func (tb *Testbed) RunOnNode(n *Node, name string, fn func(p *sim.Proc)) {
	nk := n.M.K
	if !tb.Sharded() || nk == tb.K {
		nk.Spawn(name, fn)
		return
	}
	tb.K.Post(nk, tb.K.Now(), func() { nk.Spawn(name, fn) })
}

// PostToHub schedules fn on the hub domain from node domain kernel from,
// delivered at the next window barrier.
func (tb *Testbed) PostToHub(from *sim.Kernel, fn func()) {
	if !tb.Sharded() || from == tb.K {
		from.After(0, fn)
		return
	}
	from.Post(tb.K, from.Now(), fn)
}

// ShardRun drives a sharded testbed until stop reports true (checked at
// window barriers), the set goes quiescent, or Set.Stop is called.
func (tb *Testbed) ShardRun(stop func() bool) {
	tb.Set.Run(stop)
}

// TraceMerged returns the whole-cluster trace: on a sharded testbed the
// hub lane and every node lane merged in canonical order (lane contents
// are worker-count-invariant, so the merge is byte-stable); otherwise
// Trace itself. Merge after the run — lanes must be quiescent.
func (tb *Testbed) TraceMerged() *trace.Recorder {
	if !tb.Sharded() || tb.Trace == nil {
		return tb.Trace
	}
	lanes := make([]*trace.Recorder, 0, 1+len(tb.nodeLanes))
	lanes = append(lanes, tb.Trace)
	lanes = append(lanes, tb.nodeLanes...)
	var end sim.Time
	for _, k := range tb.Set.Domains() {
		if t := k.Now(); t > end {
			end = t
		}
	}
	return trace.Merge(trace.FixedClock(end), lanes...)
}

// shadowLink mirrors one link's carrier state onto the hub domain, fed by
// the fault injector's observer, so hub-side health probes never read a
// node domain's live link struct.
type shadowLink struct {
	a2b, b2a bool
}

// noteFault updates the link-state mirror from one fired fault event.
// Runs on the hub domain via the injector observer.
func (tb *Testbed) noteFault(ev faults.Event) {
	var down bool
	switch ev.Kind {
	case faults.LinkDown, faults.Partition:
		down = true
	case faults.LinkUp:
		down = false
	default:
		return
	}
	sh := tb.shadow[ev.Target]
	if sh == nil {
		sh = &shadowLink{}
		tb.shadow[ev.Target] = sh
	}
	switch ev.Dir.String() {
	case "tx":
		sh.a2b = down
	case "rx":
		sh.b2a = down
	default:
		sh.a2b, sh.b2a = down, down
	}
}

// LinkDownMirror reports whether the named link (injector naming:
// "node3.vmm", "server", …) is mirrored as down in either direction. Only
// fault-schedule-driven state is visible here; direct SetDown calls on a
// foreign domain's link are not (and are illegal on a sharded testbed).
func (tb *Testbed) LinkDownMirror(name string) bool {
	sh := tb.shadow[name]
	return sh != nil && (sh.a2b || sh.b2a)
}

// NodeLinksDownMirror reports the mirrored carrier state for node i's
// guest or VMM link — the sharded stand-in for probing the links
// directly.
func (tb *Testbed) NodeLinksDownMirror(i int) bool {
	return tb.LinkDownMirror(fmt.Sprintf("node%d.guest", i)) ||
		tb.LinkDownMirror(fmt.Sprintf("node%d.vmm", i))
}
