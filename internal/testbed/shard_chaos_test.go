package testbed

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestShardedChaosDeterminism deploys three nodes on a sharded testbed
// under a fault schedule that crosses shard boundaries — a crash/restart
// cycle on the hub's primary server, a linkdown/linkup window and a loss
// burst on node-domain VMM links — and pins that the outcome is
// byte-identical at every worker count. (The name matches the
// `make chaos` -run filter, so this runs under the race detector.)
func TestShardedChaosDeterminism(t *testing.T) {
	run := func(shards int) string {
		cfg := small()
		cfg.Shards = shards
		tb := New(cfg)
		tb.AddSecondaryServer(cfg)
		nodes := make([]*Node, 3)
		for i := range nodes {
			nodes[i] = tb.AddNode(cfg)
			nodes[i].M.Firmware.InitTime = sim.Second
		}

		sched, err := faults.Parse(
			"3s crash server; 4s linkdown node1.vmm; 5s loss node0.vmm 0.02; " +
				"8s linkup node1.vmm; 10s loss node0.vmm 0; 12s mediaerr server2 0 64 2s")
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.NewFaultInjector().Apply(sched); err != nil {
			t.Fatal(err)
		}

		type outcome struct {
			Node            string
			ReadyAt, BareAt sim.Time
			Err             string
		}
		outcomes := make([]outcome, len(nodes))
		done := 0
		for i, n := range nodes {
			i, n := i, n
			tb.RunOnNode(n, fmt.Sprintf("deploy%d", i), func(p *sim.Proc) {
				o := outcome{Node: n.M.Name}
				r, err := tb.DeployBMcast(p, n, core.DefaultConfig(), quickBoot(cfg))
				if err != nil {
					o.Err = err.Error()
				} else {
					o.ReadyAt = p.Now()
					tb.WaitBareMetal(p, n, r)
					o.BareAt = p.Now()
				}
				nk := tb.NodeKernel(n)
				tb.PostToHub(nk, func() {
					outcomes[i] = o
					done++
				})
			})
		}
		tb.Set.RunUntil(sim.Time(2*sim.Hour), func() bool { return done == len(nodes) })
		if done != len(nodes) {
			t.Fatalf("shards=%d: %d/%d deployments finished", shards, done, len(nodes))
		}
		for _, o := range outcomes {
			if o.Err != "" {
				t.Fatalf("shards=%d: %s: %s", shards, o.Node, o.Err)
			}
		}

		snap := tb.Metrics.Snapshot()
		if got := snap.CounterValue("faults.injected"); got != 6 {
			t.Fatalf("shards=%d: faults.injected = %v, want 6", shards, got)
		}
		if got := snap.CounterValue("vblade.crashes", metrics.L("node", "server")); got != 1 {
			t.Fatalf("shards=%d: vblade.crashes = %v, want 1", shards, got)
		}

		var fp []byte
		for _, o := range outcomes {
			b, err := json.Marshal(o)
			if err != nil {
				t.Fatal(err)
			}
			fp = append(fp, b...)
			fp = append(fp, '\n')
		}
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return string(append(fp, b...))
	}

	want := run(1)
	for _, shards := range []int{2, 8} {
		if got := run(shards); got != want {
			t.Fatalf("sharded chaos outcome differs between shards=1 and shards=%d", shards)
		}
	}
}
