// Package testbed wires simulated hardware into the paper's experimental
// setup: a storage server exporting OS images over AoE through a gigabit
// jumbo-frame switch, instance machines with two NICs (one dedicated to
// the VMM), and an InfiniBand fabric for the cluster experiments.
package testbed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/faults"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/hw/ib"
	"repro/internal/hw/nic"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vblade"
)

// ServerMAC is the storage server's address on the deployment network.
const ServerMAC ethernet.MAC = 0x0000_0000_0001

// Testbed is one assembled cluster.
type Testbed struct {
	K      *sim.Kernel
	Switch *ethernet.Switch
	IB     *ib.Fabric

	// Set and Router are non-nil for a sharded testbed (Config.Shards > 0;
	// DESIGN.md §13): K is then the hub domain's kernel, each node gets its
	// own domain, and Router replaces Switch as the fabric.
	Set    *sim.ShardSet
	Router *ethernet.Router

	Image     *disk.Image
	Server    *vblade.Server
	ServerNIC *nic.NIC
	// ServerLink is the primary storage server's switch link.
	ServerLink *ethernet.Link

	// Secondaries are additional storage servers exporting the same image,
	// added via AddSecondaryServer; deployments fail over to them when the
	// primary dies.
	Secondaries []*Secondary

	Nodes []*Node

	// Metrics is the cluster-wide instrument registry (always present).
	// Trace is the structured trace recorder, nil unless Config.EnableTrace.
	// On a sharded testbed Trace is the hub domain's lane; use TraceMerged
	// for the whole-cluster view after the run.
	Metrics *metrics.Registry
	Trace   *trace.Recorder

	links []*ethernet.Link

	// nodeLanes are the per-node trace lanes of a sharded traced testbed,
	// in node order; shadow mirrors link carrier state onto the hub domain
	// for control-plane probes (see NoteFault / LinkDownMirror).
	nodeLanes []*trace.Recorder
	shadow    map[string]*shadowLink
}

// Node is one instance machine with its guest OS.
type Node struct {
	M   *machine.Machine
	OS  *guest.OS
	VMM *core.VMM // nil until a BMcast deployment boots it

	// GuestLink/VMMLink are the node's two switch links: NIC 0 (guest) and
	// NIC 1 (dedicated to the VMM), for fault injection.
	GuestLink *ethernet.Link
	VMMLink   *ethernet.Link
}

// Links returns the node's switch links: the guest NIC's and the VMM
// NIC's, in that order — the per-node handles fault injection targets.
func (n *Node) Links() []*ethernet.Link {
	return []*ethernet.Link{n.GuestLink, n.VMMLink}
}

// Config configures a testbed.
type Config struct {
	Seed          int64
	ImageBytes    int64 // OS image size (32 GB in the paper)
	ImageSeed     int64
	ServerThreads int // vblade worker pool size
	Storage       machine.StorageKind
	DiskSectors   int64 // 0 = full 500 GB testbed disk
	EnableTrace   bool  // record structured spans/events (see Testbed.Trace)

	// Shards > 0 builds the parallel testbed (DESIGN.md §13): the control
	// plane and storage servers form the hub domain and every node gets its
	// own domain, executed by up to Shards workers. Simulation output is
	// byte-identical at every Shards value ≥ 1 for a given seed.
	Shards int
	// ShardWindow overrides the barrier window width (default
	// DefaultShardWindow). The window is part of the model: changing it may
	// change boundary-frame timing, so compare runs only at equal windows.
	ShardWindow sim.Duration
}

// DefaultShardWindow is the default barrier window of a sharded testbed.
// It is a multiple of the minimum cross-domain latency (link propagation
// 2µs + switch latency 5µs), trading exactness of boundary arrival times
// (quantized up to the window edge) for barrier frequency.
const DefaultShardWindow = 100 * sim.Microsecond

// DefaultConfig returns the paper's setup: a 32 GB image behind a
// thread-pooled vblade on gigabit Ethernet with jumbo frames.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		ImageBytes:    32 << 30,
		ImageSeed:     42,
		ServerThreads: 8,
		Storage:       machine.StorageAHCI,
	}
}

// switchLatency is the store-and-forward latency of the testbed fabric.
const switchLatency = 5 * sim.Microsecond

// New builds a testbed with a storage server and no nodes yet.
func New(cfg Config) *Testbed {
	tb := &Testbed{
		Image:   disk.NewSynthImage("ubuntu-14.04", cfg.ImageBytes, cfg.ImageSeed),
		Metrics: metrics.NewRegistry(),
	}
	var k *sim.Kernel
	if cfg.Shards > 0 {
		w := cfg.ShardWindow
		if w <= 0 {
			w = DefaultShardWindow
		}
		tb.Set = sim.NewShardSet(cfg.Seed, cfg.Shards, w)
		k = tb.Set.NewDomain("hub")
		tb.Router = ethernet.NewRouter("sw0", switchLatency)
		tb.shadow = make(map[string]*shadowLink)
	} else {
		k = sim.New(cfg.Seed)
		tb.Switch = ethernet.NewSwitch(k, "sw0", switchLatency)
		// The IB fabric is only assembled single-threaded; the BMcast
		// deployment path never touches it.
		tb.IB = ib.QDR4X(k)
	}
	tb.K = k
	if cfg.EnableTrace {
		tb.Trace = trace.NewRecorder(k)
	}
	link := tb.connect(k, "server", ServerMAC)
	tb.ServerLink = link
	tb.ServerNIC = nic.New(k, "server.eth0", nic.IntelX540, ServerMAC, link)
	tb.Server = vblade.NewServer(k, tb.ServerNIC, cfg.ServerThreads)
	if tb.Sharded() {
		tb.Server.ShareFramePool()
	}
	tb.Server.Instrument(tb.Metrics, tb.Trace, "server")
	tb.Server.AddTarget(0, 0, tb.Image)
	tb.Server.Start()
	return tb
}

// connect attaches a station on kernel k to the fabric (switch or router)
// and instruments the new link under name. The station's MACs are needed
// by the router's static forwarding table; the learning switch ignores
// them.
func (tb *Testbed) connect(k *sim.Kernel, name string, macs ...ethernet.MAC) *ethernet.Link {
	var l *ethernet.Link
	if tb.Sharded() {
		l = tb.Router.Connect(k, ethernet.GigabitJumbo(), macs...)
	} else {
		l = tb.Switch.Connect(ethernet.GigabitJumbo())
	}
	tb.links = append(tb.links, l)
	l.Instrument(tb.Metrics, name)
	return l
}

// Sharded reports whether this testbed runs on the parallel shard
// executor.
func (tb *Testbed) Sharded() bool { return tb.Set != nil }

// Secondary is one additional storage server for failover experiments.
type Secondary struct {
	Server *vblade.Server
	NIC    *nic.NIC
	MAC    ethernet.MAC
	Link   *ethernet.Link
}

// AddSecondaryServer attaches another vblade server exporting the same
// image to the switch. Deployments started afterwards get it appended to
// their initiator's failover list.
func (tb *Testbed) AddSecondaryServer(cfg Config) *Secondary {
	idx := len(tb.Secondaries)
	mac := ServerMAC + 1 + ethernet.MAC(idx)
	name := fmt.Sprintf("server%d", idx+2)
	// Secondaries live in the hub domain alongside the primary.
	link := tb.connect(tb.K, name, mac)
	n := nic.New(tb.K, name+".eth0", nic.IntelX540, mac, link)
	s := vblade.NewServer(tb.K, n, cfg.ServerThreads)
	if tb.Sharded() {
		s.ShareFramePool()
	}
	s.Instrument(tb.Metrics, tb.Trace, name)
	s.AddTarget(0, 0, tb.Image)
	s.Start()
	sec := &Secondary{Server: s, NIC: n, MAC: mac, Link: link}
	tb.Secondaries = append(tb.Secondaries, sec)
	return sec
}

// AddNode assembles a new instance machine attached to the switch and IB
// fabric. NIC 0 is the guest's; NIC 1 is dedicated to the VMM.
func (tb *Testbed) AddNode(cfg Config) *Node {
	idx := len(tb.Nodes)
	mcfg := machine.RX200S6(fmt.Sprintf("node%d", idx))
	mcfg.Storage = cfg.Storage
	if cfg.DiskSectors > 0 {
		mcfg.Disk.Sectors = cfg.DiskSectors
	}
	nk := tb.K
	lane := tb.Trace
	if tb.Sharded() {
		// Each node is its own shard domain with its own trace lane; the
		// lane's span-ID base is derived from the fixed node index so IDs
		// stay globally unique without cross-domain coordination.
		nk = tb.Set.NewDomain(mcfg.Name)
		if tb.Trace != nil {
			lane = trace.NewRecorder(nk)
			lane.SetIDBase(int64(idx+1) << 40)
		}
		tb.nodeLanes = append(tb.nodeLanes, lane)
	}
	m := machine.New(nk, mcfg)
	m.Trace = lane
	m.Metrics = tb.Metrics
	m.SharedPools = tb.Sharded()
	base := ethernet.MAC(0x0200_0000_0000) + ethernet.MAC(idx)*0x10
	l0 := tb.connect(nk, m.Name+".guest", base)
	l1 := tb.connect(nk, m.Name+".vmm", base+1)
	m.AttachNIC(nic.IntelPro1000, base, l0)
	m.AttachNIC(nic.IntelPro1000, base+1, l1)
	if !tb.Sharded() {
		m.AttachIB(tb.IB)
	}
	n := &Node{M: m, OS: guest.NewOS("ubuntu", m), GuestLink: l0, VMMLink: l1}
	tb.Nodes = append(tb.Nodes, n)
	return n
}

// NewFaultInjector returns a fault injector with the testbed's links and
// servers registered under canonical names: "server" for the primary
// vblade (both its link and the server itself), "server2", "server3", …
// for secondaries, and "node<i>.guest" / "node<i>.vmm" for each node's
// links. Assemble the cluster first; targets added later are not seen.
func (tb *Testbed) NewFaultInjector() *faults.Injector {
	inj := faults.NewInjector(tb.K)
	inj.Instrument(tb.Metrics, tb.Trace)
	inj.RegisterLink("server", tb.ServerLink)
	inj.RegisterServer("server", tb.Server)
	for i, sec := range tb.Secondaries {
		name := fmt.Sprintf("server%d", i+2)
		inj.RegisterLink(name, sec.Link)
		inj.RegisterServer(name, sec.Server)
	}
	for i, n := range tb.Nodes {
		if tb.Sharded() {
			// Node links live on the node's domain: mutations must be
			// scheduled there, and the hub keeps a carrier-state mirror for
			// control-plane probes.
			inj.RegisterLinkOn(fmt.Sprintf("node%d.guest", i), n.GuestLink, n.M.K)
			inj.RegisterLinkOn(fmt.Sprintf("node%d.vmm", i), n.VMMLink, n.M.K)
		} else {
			inj.RegisterLink(fmt.Sprintf("node%d.guest", i), n.GuestLink)
			inj.RegisterLink(fmt.Sprintf("node%d.vmm", i), n.VMMLink)
		}
	}
	if tb.Sharded() {
		inj.SetObserver(tb.noteFault)
	}
	return inj
}

// Links returns every link attached to the switch, for fault injection.
func (tb *Testbed) Links() []*ethernet.Link {
	out := make([]*ethernet.Link, len(tb.links))
	copy(out, tb.links)
	return out
}

// BMcastResult summarizes one BMcast deployment.
type BMcastResult struct {
	FirmwareDone sim.Time // firmware initialization complete
	VMMBooted    sim.Time
	GuestBooted  sim.Time
	Deployed     sim.Time // background copy complete
	BareMetal    sim.Time // de-virtualization complete

	// Trace is the testbed's trace recorder (nil unless Config.EnableTrace),
	// here so assertions about phase ordering/containment travel with the
	// result.
	Trace *trace.Recorder
}

// DeployBMcast runs the full BMcast path on node n: firmware, VMM network
// boot, guest boot under mediation, streaming deployment in the
// background. It returns when the guest has booted; the deployment
// continues in the background (use WaitBareMetal).
func (tb *Testbed) DeployBMcast(p *sim.Proc, n *Node, vcfg core.Config, bp guest.BootProfile) (*BMcastResult, error) {
	res := &BMcastResult{Trace: tb.Trace}
	n.M.Firmware.PowerOn(p, 0) // firmware runs once; VMM loads via network
	res.FirmwareDone = p.Now()
	vmm, err := core.Boot(p, n.M, vcfg, 1, ServerMAC, 0, 0, tb.Image.Sectors)
	if err != nil {
		return nil, err
	}
	n.VMM = vmm
	for _, sec := range tb.Secondaries {
		vmm.Initiator().AddTarget(sec.MAC, 0, 0)
	}
	res.VMMBooted = p.Now()
	// The guest boots inside the Deployment phase; carrying the phase span
	// as the proc's cause roots the guest's boot span (and everything the
	// boot's I/O causes) under it.
	prevCause := trace.SwapCause(p, vmm.PhaseSpan())
	err = n.OS.Boot(p, bp)
	trace.SwapCause(p, prevCause)
	if err != nil {
		return nil, err
	}
	res.GuestBooted = p.Now()
	return res, nil
}

// WaitBareMetal blocks until node n's VMM has de-virtualized, filling in
// the result's deployment timestamps.
func (tb *Testbed) WaitBareMetal(p *sim.Proc, n *Node, res *BMcastResult) {
	n.VMM.WaitPhase(p, core.PhaseBareMetal)
	res.Deployed = n.VMM.DeployedAt
	res.BareMetal = n.VMM.DevirtedAt
}

// BootBareMetal boots node n from a pre-deployed local disk — the paper's
// bare-metal baseline.
func (tb *Testbed) BootBareMetal(p *sim.Proc, n *Node, bp guest.BootProfile) error {
	n.M.SetDiskImage(tb.Image)
	n.M.Firmware.PowerOn(p, 0)
	return n.OS.Boot(p, bp)
}

// VerifyDeployment checks that node n's local disk is byte-equivalent to
// the server image except where the guest wrote: every sector's content
// source must be either the image or a guest-attributed source. It
// returns the per-source sector counts for reporting.
func (tb *Testbed) VerifyDeployment(n *Node) (map[string]int64, error) {
	counts := n.M.Disk.Store().CountBySource()
	image := n.VMM.Bitmap().Sectors()
	var covered int64
	for name, c := range counts {
		if name == "zero" {
			continue
		}
		covered += c
	}
	if covered < image {
		return counts, fmt.Errorf("testbed: only %d of %d image sectors have content", covered, image)
	}
	return counts, nil
}
