package testbed

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/sim"
)

type guestBootProfile = guest.BootProfile

func defaultBoot() guest.BootProfile { return guest.DefaultBootProfile() }

func small() Config {
	cfg := DefaultConfig()
	cfg.ImageBytes = 32 << 20
	cfg.DiskSectors = 1 << 20
	return cfg
}

func TestAssembly(t *testing.T) {
	cfg := small()
	tb := New(cfg)
	n1 := tb.AddNode(cfg)
	n2 := tb.AddNode(cfg)
	if len(tb.Nodes) != 2 || tb.Nodes[0] != n1 || tb.Nodes[1] != n2 {
		t.Fatal("node bookkeeping wrong")
	}
	if len(n1.M.NICs) != 2 {
		t.Fatalf("node has %d NICs, want 2 (guest + VMM)", len(n1.M.NICs))
	}
	if n1.M.NICs[0].MAC == n2.M.NICs[0].MAC {
		t.Fatal("MAC collision between nodes")
	}
	if n1.M.IB == nil {
		t.Fatal("node missing IB HCA")
	}
	// Server link + 2 per node.
	if got := len(tb.Links()); got != 5 {
		t.Fatalf("links = %d, want 5", got)
	}
}

func TestBootBareMetal(t *testing.T) {
	cfg := small()
	tb := New(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second
	bp := quickBoot(cfg)
	tb.K.Spawn("bm", func(p *sim.Proc) {
		if err := tb.BootBareMetal(p, n, bp); err != nil {
			t.Error(err)
		}
	})
	tb.K.Run()
	if !n.OS.Booted {
		t.Fatal("bare-metal boot failed")
	}
}

func TestServerServesImage(t *testing.T) {
	cfg := small()
	tb := New(cfg)
	if tb.Server.Target(0, 0) == nil {
		t.Fatal("image not exported at 0.0")
	}
	if tb.Image.Size() != cfg.ImageBytes {
		t.Fatalf("image size = %d", tb.Image.Size())
	}
}

// quickBoot shrinks the boot profile to the test image.
func quickBoot(cfg Config) (bp guestBootProfile) {
	b := defaultBoot()
	b.TotalBytes = 4 << 20
	b.CPUTime = sim.Second
	b.SpanSectors = cfg.ImageBytes / 2 / 512
	return b
}
