package trace

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/sim"
)

// Chrome trace-event export (the JSON format consumed by Perfetto and
// chrome://tracing). Simulation time is the trace clock: "ts" is
// sim-time expressed in microseconds (the format's native unit), so one
// trace second is one simulated second. Each node becomes a process;
// each span category on a node becomes a thread, so phases, mediated
// commands, AoE round trips, and the background copy stack as separate
// timeline rows per machine.

// chromeEvent is one entry of the "traceEvents" array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format (preferred over the bare array
// because it survives truncation detection and carries metadata).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// micros converts a simulation instant to trace microseconds.
func micros(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// microsDur converts a duration to trace microseconds.
func microsDur(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// laneTable assigns stable pid/tid numbers: processes per node in
// first-seen order, threads per (node, category) in first-seen order.
type laneTable struct {
	pids     map[string]int
	pidOrder []string
	tids     map[[2]string]int
	tidOrder [][2]string
}

func newLaneTable() *laneTable {
	return &laneTable{pids: make(map[string]int), tids: make(map[[2]string]int)}
}

func (lt *laneTable) pid(node string) int {
	if id, ok := lt.pids[node]; ok {
		return id
	}
	id := len(lt.pids) + 1
	lt.pids[node] = id
	lt.pidOrder = append(lt.pidOrder, node)
	return id
}

func (lt *laneTable) tid(node, cat string) int {
	key := [2]string{node, cat}
	if id, ok := lt.tids[key]; ok {
		return id
	}
	id := len(lt.tids) + 1
	lt.tids[key] = id
	lt.tidOrder = append(lt.tidOrder, key)
	return id
}

// WriteChromeTrace writes the recorder's contents as Chrome trace-event
// JSON. Spans export as complete ("X") events; spans still open export
// with their duration as of the recorder's clock and an
// "unfinished":true argument (the BareMetal phase is the usual case).
// Instant events export as thread-scoped "i" events. Causal edges export
// twice: as span args (span_id / parent / flow_from, which round-trip
// through an import) and as paired "s"/"f" flow events so Perfetto draws
// arrows across timelines. A nil recorder writes a valid empty trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if r != nil {
		lt := newLaneTable()
		byID := make(map[int64]*Span, len(r.spans))
		for _, s := range r.spans {
			byID[s.ID] = s
		}
		for _, s := range r.spans {
			args := attrMap(s.Args)
			dur := microsDur(s.Duration())
			if args == nil {
				args = map[string]any{}
			}
			if s.Open {
				args["unfinished"] = true
			}
			args["span_id"] = s.ID
			if s.Parent != 0 {
				args["parent"] = s.Parent
			}
			if s.FlowFrom != 0 {
				args["flow_from"] = s.FlowFrom
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				TS: micros(s.Start), Dur: &dur,
				Pid: lt.pid(s.Node), Tid: lt.tid(s.Node, s.Cat),
				Args: args,
			})
			if src, ok := byID[s.FlowFrom]; ok && s.FlowFrom != 0 {
				// The flow arrow leaves the source slice and lands at this
				// span's start. Both endpoints carry the destination span's
				// ID; the start timestamp is clamped into the source slice
				// so the viewer can bind it.
				sts := micros(s.Start)
				if !src.Open && s.Start > src.Stop {
					sts = micros(src.Stop)
				}
				if s.Start < src.Start {
					sts = micros(src.Start)
				}
				out.TraceEvents = append(out.TraceEvents,
					chromeEvent{
						Name: "flow", Cat: "flow", Ph: "s", TS: sts, ID: s.ID,
						Pid: lt.pid(src.Node), Tid: lt.tid(src.Node, src.Cat),
					},
					chromeEvent{
						Name: "flow", Cat: "flow", Ph: "f", BP: "e", TS: micros(s.Start), ID: s.ID,
						Pid: lt.pid(s.Node), Tid: lt.tid(s.Node, s.Cat),
					})
			}
		}
		for _, e := range r.events {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name, Cat: e.Cat, Ph: "i", S: "t",
				TS:  micros(e.Time),
				Pid: lt.pid(e.Node), Tid: lt.tid(e.Node, e.Cat),
				Args: attrMap(e.Args),
			})
		}
		out.TraceEvents = append(out.TraceEvents, lt.metadata()...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// metadata emits process_name / thread_name entries so the viewer shows
// node and category names instead of bare ids.
func (lt *laneTable) metadata() []chromeEvent {
	var out []chromeEvent
	nodes := append([]string(nil), lt.pidOrder...)
	sort.Strings(nodes)
	for _, node := range nodes {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: lt.pids[node],
			Args: map[string]any{"name": node},
		})
	}
	keys := append([][2]string(nil), lt.tidOrder...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M",
			Pid: lt.pids[key[0]], Tid: lt.tids[key],
			Args: map[string]any{"name": key[1]},
		})
	}
	return out
}
