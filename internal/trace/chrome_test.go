package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// stepClock is a hand-advanced Clock so the exporter test controls every
// timestamp without running a kernel.
type stepClock struct{ now sim.Time }

func (c *stepClock) Now() sim.Time { return c.now }

// goldenRecorder builds a small deployment-shaped trace exercising every
// exporter feature: nested spans, a cross-node flow edge, span attrs, an
// instant event, and a span left open (the BareMetal phase in real runs).
func goldenRecorder() *Recorder {
	c := &stepClock{}
	r := NewRecorder(c)

	c.now = sim.Time(10 * sim.Millisecond)
	phase := r.Begin("node0", "phase", "Initialization")
	r.Emit("node0", "cloud", "requested", Int("instance", 1))

	c.now = sim.Time(20 * sim.Millisecond)
	med := r.BeginChild(phase, "node0", "mediator", "redirect", Int("lba", 2048))
	req := r.BeginChild(med, "node0", "aoe", "read", Int("sectors", 17))

	c.now = sim.Time(21 * sim.Millisecond)
	serve := r.Begin("server", "aoe", "serve", Int("qwait", 0))
	serve.LinkFlowFrom(req)
	c.now = sim.Time(23 * sim.Millisecond)
	serve.End(Int("bytes", 8704))

	c.now = sim.Time(25 * sim.Millisecond)
	req.End()
	med.End(Int("bytes", 8704))

	c.now = sim.Time(40 * sim.Millisecond)
	phase.End()
	//bmcast:allow spanleak stays open on purpose: the test asserts the "unfinished" export
	r.Begin("node0", "phase", "BareMetal")
	c.now = sim.Time(50 * sim.Millisecond)
	return r
}

// TestChromeTraceGolden pins the exporter's exact output. The golden file
// is part of the exporter's contract: bmcast-obs -chrome-out re-emits
// loaded traces through this code path, and the fleet determinism check
// diffs those files across runs, so any byte change here is a visible
// format change. Regenerate deliberately with:
//
//	go test ./internal/trace/ -run TestChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/chrome_golden.json"
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter output diverged from %s (regenerate with -update if deliberate)\n got: %s\nwant: %s",
			path, buf.Bytes(), want)
	}
}

// TestChromeTraceEventCounts checks the export is complete by category:
// one "X" per span, one "i" per instant event, an "s"/"f" pair per flow
// edge, and one metadata record per process and thread lane.
func TestChromeTraceEventCounts(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range out.TraceEvents {
		counts[e.Ph]++
	}
	flows := 0
	for _, s := range r.Spans() {
		if s.FlowFrom != 0 {
			flows++
		}
	}
	if counts["X"] != len(r.Spans()) {
		t.Errorf("%d complete events, want %d (one per span)", counts["X"], len(r.Spans()))
	}
	if counts["i"] != len(r.Events()) {
		t.Errorf("%d instant events, want %d", counts["i"], len(r.Events()))
	}
	if counts["s"] != flows || counts["f"] != flows {
		t.Errorf("flow pairs %d/%d, want %d each", counts["s"], counts["f"], flows)
	}
	// Lanes: node0 and server processes; node0 has phase/cloud/mediator/aoe
	// threads, server has aoe — 2 process_name + 5 thread_name records.
	if counts["M"] != 7 {
		t.Errorf("%d metadata records, want 7", counts["M"])
	}
}

// TestNilRecorderHotPathAllocs pins the disabled-instrumentation contract
// the data path relies on: with no recorder attached, a begin/emit/end
// sequence must not allocate at all — each call is one nil check.
func TestNilRecorderHotPathAllocs(t *testing.T) {
	var r *Recorder
	avg := testing.AllocsPerRun(1000, func() {
		sp := r.Begin("node0", "mediator", "redirect")
		r.Emit("node0", "cpuvirt", "vm-exit")
		sp.End()
	})
	if avg != 0 {
		t.Fatalf("nil-recorder hot path allocates %.2f objects/op, want 0", avg)
	}
}
