package trace

import (
	"sort"

	"repro/internal/sim"
)

// Lane support for the sharded sim kernel (DESIGN.md §13). Each shard
// domain records into its own Recorder ("lane") timed by the domain's
// kernel, so recording never crosses a domain boundary during a window.
// Lanes get disjoint ID ranges via SetIDBase so span IDs — which flow
// across domains inside frames (FlowID) — stay globally unique, and
// Merge folds the lanes into one canonical recorder after the run.

// SetIDBase moves the recorder's span-ID counter to base, so the next
// Begin returns base+1. Lanes of a sharded run use disjoint bases
// derived from the (fixed) domain index, making IDs unique across the
// whole run without cross-lane coordination. Calling it on a non-empty
// recorder or moving the counter backwards panics: ID ranges must be
// reserved up front, not spliced in.
func (r *Recorder) SetIDBase(base int64) {
	if r == nil {
		return
	}
	if len(r.spans) > 0 || base < r.nextID {
		panic("trace: SetIDBase on a live recorder")
	}
	r.nextID = base
}

// Merge folds lanes into a single recorder in canonical order: spans by
// (Start, ID), events by (Time, lane index, lane position). Lane
// contents are worker-count-invariant under the sharded executor and
// lane order is the fixed domain order, so the merged trace is
// byte-stable for a given seed. The merged recorder is timed by clock
// (typically a FixedClock at the set frontier); span pointers are shared
// with the lanes, not copied.
func Merge(clock Clock, lanes ...*Recorder) *Recorder {
	m := NewRecorder(clock)
	type taggedEvent struct {
		e    Event
		lane int
		pos  int
	}
	var evs []taggedEvent
	for li, lane := range lanes {
		if lane == nil {
			continue
		}
		for _, s := range lane.spans {
			s.r = m
			m.spans = append(m.spans, s)
			if s.ID > m.nextID {
				m.nextID = s.ID
			}
		}
		for pi, e := range lane.events {
			evs = append(evs, taggedEvent{e: e, lane: li, pos: pi})
		}
	}
	sort.SliceStable(m.spans, func(i, j int) bool {
		a, b := m.spans[i], m.spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.e.Time != b.e.Time {
			return a.e.Time < b.e.Time
		}
		if a.lane != b.lane {
			return a.lane < b.lane
		}
		return a.pos < b.pos
	})
	m.events = make([]Event, len(evs))
	for i, te := range evs {
		m.events[i] = te.e
	}
	return m
}

// LaneClock is a Clock that follows whichever lane kernel last advanced;
// unused for merged recorders but handy in tests.
type LaneClock struct{ K *sim.Kernel }

// Now returns the lane kernel's clock.
func (c LaneClock) Now() sim.Time { return c.K.Now() }
