// Package trace is the simulation's structured tracing layer: typed
// events and spans (begin/end with attributes) recorded against the
// simulated clock into an append-only buffer.
//
// Every deployment phase, mediated command, AoE round trip, and VM exit
// becomes a span or event here, which makes the paper's timeline
// evaluation (§5, Figs. 4–14) machine-checkable: tests assert span
// ordering and containment (e.g. no mediated-I/O span after the
// Devirtualization span closes), and the whole buffer exports to Chrome
// trace-event JSON loadable in Perfetto or chrome://tracing.
//
// A nil *Recorder is valid everywhere and records nothing; every method
// is guarded by a single pointer check, so instrumented hot paths cost
// one predictable branch when tracing is off.
package trace

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Clock provides the trace timebase. *sim.Kernel satisfies it.
type Clock interface {
	Now() sim.Time
}

// Attr is one key/value attribute attached to a span or event. Values
// are exported into the Chrome trace "args" object as-is.
type Attr struct {
	Key   string
	Value any
}

// Str returns a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int returns an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Span is one named interval on a node's timeline. A span is created
// open by Recorder.Begin and closed by End; an open span has Stop equal
// to its Start and Open true.
//
// Spans carry two kinds of causal edge, which together make a recorded
// deployment a queryable DAG:
//
//   - Parent: the enclosing span in the same logical request (a mediated
//     command inside a VMM phase, an AoE round trip inside a mediated
//     command). Zero means root.
//   - FlowFrom: a cross-node handoff — the span on another timeline whose
//     completion caused this one (an AoE request span on the client links
//     to the serve span on the vblade server). Zero means none.
type Span struct {
	r *Recorder

	ID       int64 // unique within the recorder, 1-based, in begin order
	Parent   int64 // ID of the causal parent span, or 0
	FlowFrom int64 // ID of the cross-node origin span, or 0

	Node  string // machine the span belongs to ("node0", "server", ...)
	Cat   string // taxonomy bucket: "phase", "mediator", "aoe", "vmm", ...
	Name  string
	Start sim.Time
	Stop  sim.Time
	Open  bool
	Args  []Attr
}

// LinkFlowFrom records a cross-node causal edge: src's completion fed
// this span. Nil spans on either side are accepted and ignored.
func (s *Span) LinkFlowFrom(src *Span) {
	if s == nil || src == nil {
		return
	}
	s.FlowFrom = src.ID
}

// SpanID returns the span's recorder-unique ID, or 0 for a nil span.
func (s *Span) SpanID() int64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// End closes the span at the current simulation time, appending any
// extra attributes. Ending a nil or already-closed span is a no-op.
func (s *Span) End(attrs ...Attr) {
	if s == nil || !s.Open {
		return
	}
	s.Stop = s.r.clock.Now()
	s.Open = false
	s.Args = append(s.Args, attrs...)
}

// Duration reports the span length; for an open span, the time elapsed
// since Start as of the recorder's clock. A nil span has zero duration.
func (s *Span) Duration() sim.Duration {
	if s == nil {
		return 0
	}
	if s.Open {
		return s.r.clock.Now().Sub(s.Start)
	}
	return s.Stop.Sub(s.Start)
}

// Contains reports whether instant t falls within the span (inclusive
// start, exclusive stop; an open span contains everything after Start).
func (s *Span) Contains(t sim.Time) bool {
	if s == nil {
		return false
	}
	return t >= s.Start && (s.Open || t < s.Stop)
}

// Event is one instantaneous typed event.
type Event struct {
	Time sim.Time
	Node string
	Cat  string
	Name string
	Args []Attr
}

// Recorder accumulates spans and events. The zero value is not usable;
// construct with NewRecorder. A nil *Recorder discards everything.
type Recorder struct {
	clock  Clock
	spans  []*Span // in begin order
	events []Event // in time order (appended at clock time)
	nextID int64   // last span ID handed out
}

// NewRecorder returns a recorder timed by clock.
func NewRecorder(clock Clock) *Recorder {
	return &Recorder{clock: clock}
}

// Enabled reports whether the recorder records (i.e. is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Begin opens a span on node's timeline and returns it. On a nil
// recorder it returns nil, which every Span method accepts.
func (r *Recorder) Begin(node, cat, name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.nextID++
	s := &Span{r: r, ID: r.nextID, Node: node, Cat: cat, Name: name, Start: r.clock.Now(), Open: true, Args: attrs}
	s.Stop = s.Start
	r.spans = append(r.spans, s)
	return s
}

// BeginChild opens a span whose causal parent is parent (which may be
// nil, yielding a root span). On a nil recorder it returns nil.
func (r *Recorder) BeginChild(parent *Span, node, cat, name string, attrs ...Attr) *Span {
	s := r.Begin(node, cat, name, attrs...)
	if s != nil && parent != nil {
		s.Parent = parent.ID
	}
	return s
}

// Emit records an instantaneous event at the current simulation time.
func (r *Recorder) Emit(node, cat, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Time: r.clock.Now(), Node: node, Cat: cat, Name: name, Args: attrs})
}

// Now reports the recorder's clock, or 0 on a nil recorder.
func (r *Recorder) Now() sim.Time {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// --- queryable view ------------------------------------------------------

// Spans returns all recorded spans in begin order (open spans included).
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Events returns all recorded events in time order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// SpansNamed returns every span with the given name, in begin order.
func (r *Recorder) SpansNamed(name string) []*Span {
	return r.filterSpans(func(s *Span) bool { return s.Name == name })
}

// SpansInCat returns every span in the given category, in begin order.
func (r *Recorder) SpansInCat(cat string) []*Span {
	return r.filterSpans(func(s *Span) bool { return s.Cat == cat })
}

// SpansOnNode returns every span on the given node, in begin order.
func (r *Recorder) SpansOnNode(node string) []*Span {
	return r.filterSpans(func(s *Span) bool { return s.Node == node })
}

// FirstSpan returns the earliest-begun span with the given name, or nil.
func (r *Recorder) FirstSpan(name string) *Span {
	if r == nil {
		return nil
	}
	for _, s := range r.spans {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func (r *Recorder) filterSpans(keep func(*Span) bool) []*Span {
	if r == nil {
		return nil
	}
	var out []*Span
	for _, s := range r.spans {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// EventsInCat returns every event in the given category, in time order.
func (r *Recorder) EventsInCat(cat string) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.events {
		if e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}

// OpenSpans reports how many spans are still open.
func (r *Recorder) OpenSpans() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, s := range r.spans {
		if s.Open {
			n++
		}
	}
	return n
}

// OpenSpanList returns the spans still open, in begin order.
func (r *Recorder) OpenSpanList() []*Span {
	return r.filterSpans(func(s *Span) bool { return s.Open })
}

// SpanByID returns the span with the given ID, or nil. IDs are dense and
// 1-based in begin order, so this is an index lookup.
func (r *Recorder) SpanByID(id int64) *Span {
	if r == nil || id <= 0 || id > int64(len(r.spans)) {
		return nil
	}
	if s := r.spans[id-1]; s.ID == id {
		return s
	}
	// Imported traces may be sparse; fall back to a scan.
	for _, s := range r.spans {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// Durations builds a duration histogram over every completed span with
// the given name — the per-span-kind latency view.
func (r *Recorder) Durations(name string) *metrics.Histogram {
	h := &metrics.Histogram{}
	if r == nil {
		return h
	}
	for _, s := range r.spans {
		if s.Name == name && !s.Open {
			h.Observe(s.Duration())
		}
	}
	return h
}

// --- proc-carried cause ---------------------------------------------------

// Cause returns the causal span carried by process p, or nil. Layers set
// a cause with SwapCause around work done on behalf of a request so that
// downstream spans (an AoE round trip issued deep inside the initiator)
// can parent themselves without threading a span through every call
// signature in between.
func Cause(p *sim.Proc) *Span {
	if p == nil {
		return nil
	}
	sp, _ := p.Annotation().(*Span)
	return sp
}

// SwapCause installs sp as p's causal span and returns the previous one,
// so callers can restore it when the request scope ends. Storing the
// span pointer in the proc's annotation slot does not allocate.
func SwapCause(p *sim.Proc, sp *Span) *Span {
	if p == nil {
		return nil
	}
	prev, _ := p.Annotation().(*Span)
	p.SetAnnotation(sp)
	return prev
}

// --- trace import ---------------------------------------------------------

// FixedClock is a Clock pinned at one instant, for recorders rebuilt
// from exported traces (where "now" is the trace's end time).
type FixedClock sim.Time

// Now returns the pinned instant.
func (c FixedClock) Now() sim.Time { return sim.Time(c) }

// ImportSpan appends a span reconstructed from an exported trace,
// preserving its recorded ID and causal edges. The recorder's ID counter
// advances past imported IDs so live and imported spans never collide.
func (r *Recorder) ImportSpan(s Span) *Span {
	if r == nil {
		return nil
	}
	sp := s
	sp.r = r
	r.spans = append(r.spans, &sp)
	if sp.ID > r.nextID {
		r.nextID = sp.ID
	}
	return &sp
}

// ImportEvent appends an event reconstructed from an exported trace.
func (r *Recorder) ImportEvent(e Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, e)
}

// --- kernel process events ----------------------------------------------

// KernelEvents hooks kernel k's process lifecycle (spawn, park, wake,
// exit) into the recorder as instant events in category "sim" on the
// given node timeline. Passing a nil recorder removes the hook. The
// hook is optional and off by default: process events are high-volume
// and most traces only need the span layers above.
func KernelEvents(r *Recorder, k *sim.Kernel, node string) {
	if r == nil {
		k.SetProcHook(nil)
		return
	}
	k.SetProcHook(func(_ sim.Time, ev sim.ProcEvent, name string) {
		r.Emit(node, "sim", ev.String(), Str("proc", name))
	})
}
