package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	sp := r.Begin("node0", "phase", "Deployment", Int("lba", 7))
	if sp != nil {
		t.Fatal("nil recorder returned a span")
	}
	sp.End()                      // must not panic
	sp.End(Str("again", "twice")) // must not panic
	r.Emit("node0", "cpuvirt", "vm-exit")
	if sp.Duration() != 0 || sp.Contains(0) {
		t.Fatal("nil span has non-zero view")
	}
	if r.Spans() != nil || r.Events() != nil || r.OpenSpans() != 0 {
		t.Fatal("nil recorder has contents")
	}
	if r.FirstSpan("Deployment") != nil {
		t.Fatal("nil recorder found a span")
	}
	if h := r.Durations("x"); h.Count() != 0 {
		t.Fatal("nil recorder produced samples")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil recorder export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("nil recorder exported %d events", len(out.TraceEvents))
	}
}

func TestSpansAndQueries(t *testing.T) {
	k := sim.New(1)
	r := NewRecorder(k)
	k.Spawn("driver", func(p *sim.Proc) {
		outer := r.Begin("node0", "phase", "Deployment")
		p.Sleep(10 * sim.Millisecond)
		in1 := r.Begin("node0", "mediator", "redirect", Int("lba", 100))
		p.Sleep(2 * sim.Millisecond)
		in1.End(Int("bytes", 4096))
		in2 := r.Begin("node0", "mediator", "redirect", Int("lba", 200))
		p.Sleep(4 * sim.Millisecond)
		in2.End()
		r.Emit("node0", "cpuvirt", "vm-exit", Str("reason", "pio"))
		p.Sleep(4 * sim.Millisecond)
		outer.End()
	})
	k.Run()

	if got := len(r.Spans()); got != 3 {
		t.Fatalf("spans = %d, want 3", got)
	}
	if r.OpenSpans() != 0 {
		t.Fatalf("open spans = %d, want 0", r.OpenSpans())
	}
	dep := r.FirstSpan("Deployment")
	if dep == nil || dep.Duration() != 20*sim.Millisecond {
		t.Fatalf("Deployment span = %v (dur %v)", dep, dep.Duration())
	}
	redirects := r.SpansNamed("redirect")
	if len(redirects) != 2 {
		t.Fatalf("redirect spans = %d, want 2", len(redirects))
	}
	for _, sp := range redirects {
		if !dep.Contains(sp.Start) || !dep.Contains(sp.Stop-1) {
			t.Fatalf("redirect span [%v,%v) escapes Deployment [%v,%v)", sp.Start, sp.Stop, dep.Start, dep.Stop)
		}
	}
	if got := len(r.SpansInCat("mediator")); got != 2 {
		t.Fatalf("mediator spans = %d, want 2", got)
	}
	if got := len(r.SpansOnNode("node0")); got != 3 {
		t.Fatalf("node0 spans = %d, want 3", got)
	}
	ev := r.EventsInCat("cpuvirt")
	if len(ev) != 1 || ev[0].Name != "vm-exit" || ev[0].Time != 16*sim.Time(sim.Millisecond) {
		t.Fatalf("cpuvirt events = %+v", ev)
	}
	h := r.Durations("redirect")
	if h.Count() != 2 || h.Min() != 2*sim.Millisecond || h.Max() != 4*sim.Millisecond {
		t.Fatalf("redirect histogram: n=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}

func TestChromeExportWellFormed(t *testing.T) {
	k := sim.New(1)
	r := NewRecorder(k)
	k.Spawn("driver", func(p *sim.Proc) {
		s := r.Begin("node0", "phase", "Deployment")
		p.Sleep(5 * sim.Millisecond)
		r.Emit("node0", "cpuvirt", "vm-exit", Str("reason", "mmio"))
		s.End()
		//bmcast:allow spanleak left open on purpose: the test asserts OpenSpans reports it
		r.Begin("node0", "phase", "BareMetal")
	})
	k.Run()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for _, e := range out.TraceEvents {
		byName[e.Name]++
		switch e.Ph {
		case "X", "i", "M":
		default:
			t.Fatalf("unexpected phase %q on %q", e.Ph, e.Name)
		}
		if e.Ph != "M" && (e.TS < 0 || e.Pid <= 0) {
			t.Fatalf("event %q has ts=%v pid=%d", e.Name, e.TS, e.Pid)
		}
	}
	if byName["Deployment"] != 1 || byName["vm-exit"] != 1 || byName["BareMetal"] != 1 {
		t.Fatalf("missing events: %v", byName)
	}
	if byName["process_name"] != 1 || byName["thread_name"] == 0 {
		t.Fatalf("missing metadata events: %v", byName)
	}
	for _, e := range out.TraceEvents {
		switch e.Name {
		case "Deployment":
			if e.Dur == nil || *e.Dur != 5000 { // 5 ms = 5000 µs
				t.Fatalf("Deployment dur = %v, want 5000µs", e.Dur)
			}
		case "BareMetal":
			if e.Args["unfinished"] != true {
				t.Fatalf("open span not marked unfinished: %v", e.Args)
			}
		}
	}
}

func TestKernelEventsHook(t *testing.T) {
	k := sim.New(1)
	r := NewRecorder(k)
	KernelEvents(r, k, "kernel")
	k.Spawn("worker", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
	})
	k.Run()
	ev := r.EventsInCat("sim")
	counts := map[string]int{}
	for _, e := range ev {
		counts[e.Name]++
	}
	if counts["proc-spawn"] != 1 || counts["proc-exit"] != 1 {
		t.Fatalf("lifecycle events = %v", counts)
	}
	if counts["proc-park"] == 0 || counts["proc-wake"] == 0 {
		t.Fatalf("no park/wake events: %v", counts)
	}

	// Removing the hook stops recording.
	KernelEvents(nil, k, "kernel")
	before := len(r.Events())
	k.Spawn("worker2", func(p *sim.Proc) { p.Sleep(sim.Millisecond) })
	k.Run()
	if len(r.Events()) != before {
		t.Fatal("hook still recording after removal")
	}
}
