package vblade

import (
	"repro/internal/hw/disk"
	"repro/internal/sim"
	"repro/internal/trace"
)

// extentCache is the shared-image serving cache: when N initiators stream
// the same image target, only the first reader of an extent pays the
// cold-storage read; everyone else is served from memory. The default
// server model (cache disabled) assumes the whole image sits in the page
// cache — enabling the cache makes the memory budget explicit, charges
// misses a cold-storage read at the server's ColdReadRate, and coalesces
// overlapping in-flight fills into one disk-model request fanned out to
// all waiters.
//
// Everything is deterministic under the seed discipline: extents are keyed
// arithmetically (no map iteration on any decision path), eviction is a
// clock sweep over an explicit ring in insertion order, and coalesced
// waiters wake in FIFO broadcast order.
type extentCache struct {
	s          *Server
	budget     int64 // resident-byte budget; the clock sweep enforces it
	extSectors int64 // extent granularity in sectors
	resident   int64 // bytes of completed, undropped extents
	table      map[uint64]*cacheExtent
	ring       []*cacheExtent // clock order: insertion order, hand sweeps
	hand       int
}

// cacheExtent is one cached extent's metadata. The simulation carries no
// actual bytes — the store already holds the data — but the reference
// count, clock bit, and fill state model exactly what a real server-side
// extent cache must track.
type cacheExtent struct {
	key     uint64
	lba     int64 // first sector, for trace events
	bytes   int64
	refs    int  // readers currently copying out of this extent
	refBit  bool // clock reference bit
	filling bool // cold-storage fill in flight; waiters coalesce onto done
	dropped bool // evicted, invalidated, or lost to a crash
	stale   bool // invalidated while filling; the filler drops it
	done    *sim.Signal
}

// EnableCache installs the shared-image serving cache with the given byte
// budget and extent granularity. Call before Start; the default (no cache)
// keeps the original serve-from-page-cache model and timing.
func (s *Server) EnableCache(budgetBytes, extentSectors int64) {
	if budgetBytes <= 0 || extentSectors <= 0 {
		panic("vblade: cache budget and extent size must be positive")
	}
	s.cache = &extentCache{
		s:          s,
		budget:     budgetBytes,
		extSectors: extentSectors,
		table:      make(map[uint64]*cacheExtent),
	}
}

// CacheHitRate reports the fraction of extent lookups served without a
// cold-storage read: resident hits plus reads coalesced onto an in-flight
// fill, over all lookups.
func (s *Server) CacheHitRate() float64 {
	h := s.CacheHits.Value() + s.CoalescedReads.Value()
	m := s.CacheMisses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// extentKey addresses one extent of one target.
func extentKey(tk uint32, ext int64) uint64 { return uint64(tk)<<40 | uint64(ext) }

// extentBytes reports the byte size of extent ext on a target with the
// given sector count (the tail extent may be short).
func (c *extentCache) extentBytes(sectors, ext int64) int64 {
	n := c.extSectors
	if rem := sectors - ext*c.extSectors; rem < n {
		n = rem
	}
	return n * disk.SectorSize
}

// acquire pins every extent overlapping [lba, lba+count) into the cache,
// blocking the worker for cold-storage reads on misses and coalescing onto
// in-flight fills. Pinned extents are appended to held (reused across
// serves by the worker) and must be released after the copy-out completes.
func (c *extentCache) acquire(p *sim.Proc, tk uint32, t *Target, lba, count int64, held []*cacheExtent) []*cacheExtent {
	s := c.s
	for e := lba / c.extSectors; e*c.extSectors < lba+count; e++ {
		key := extentKey(tk, e)
		for {
			ext, ok := c.table[key]
			if ok && !ext.filling {
				s.CacheHits.Inc()
				ext.refBit = true
				ext.refs++
				held = append(held, ext)
				break
			}
			if ok {
				// Another worker is already reading this extent from cold
				// storage: coalesce onto its fill instead of issuing a
				// second disk read.
				s.CoalescedReads.Inc()
				for ext.filling {
					p.Wait(ext.done)
				}
				if ext.dropped {
					continue // fill was lost to a crash or invalidation; re-resolve
				}
				ext.refBit = true
				ext.refs++
				held = append(held, ext)
				break
			}
			// Miss: this worker fills the extent. The entry is visible in
			// the table before the disk sleep so concurrent readers
			// coalesce rather than duplicate the read.
			s.CacheMisses.Inc()
			ext = &cacheExtent{
				key:     key,
				lba:     e * c.extSectors,
				bytes:   c.extentBytes(t.store.Sectors(), e),
				filling: true,
				done:    s.k.NewSignal("vblade.cache.fill"),
			}
			if s.tr != nil {
				s.tr.Emit(s.node, "vblade", "cache-miss", trace.Int("lba", ext.lba))
			}
			c.table[key] = ext
			c.ring = append(c.ring, ext)
			p.Sleep(sim.RateDuration(ext.bytes, s.ColdReadRate))
			ext.filling = false
			if s.crashed || ext.stale {
				// The server died mid-fill (the cache died with it), or a
				// write invalidated this extent while it was being read.
				// Drop the fill; this read proceeds uncached (the disk
				// cost is already paid).
				if c.table[key] == ext {
					delete(c.table, key)
				}
				ext.dropped = true
				ext.done.Broadcast()
				break
			}
			c.resident += ext.bytes
			c.evict()
			ext.refBit = true
			ext.refs++
			held = append(held, ext)
			ext.done.Broadcast()
			break
		}
	}
	return held
}

// release unpins extents acquired for one serve and resets the scratch.
func (c *extentCache) release(held []*cacheExtent) []*cacheExtent {
	for i, ext := range held {
		ext.refs--
		held[i] = nil
	}
	return held[:0]
}

// evict runs the clock sweep until the cache fits its budget. Referenced
// and in-flight extents are skipped; a first encounter clears the clock
// bit, a second evicts. If every entry is pinned the cache transiently
// exceeds its budget rather than deadlocking.
func (c *extentCache) evict() {
	misses := 0
	for c.resident > c.budget && len(c.ring) > 0 && misses <= 2*len(c.ring) {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		ext := c.ring[c.hand]
		if ext.dropped {
			// Compact entries removed by invalidation or a crash.
			c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
			continue
		}
		if ext.refs > 0 || ext.filling {
			c.hand++
			misses++
			continue
		}
		if ext.refBit {
			ext.refBit = false
			c.hand++
			misses++
			continue
		}
		delete(c.table, ext.key)
		ext.dropped = true
		c.resident -= ext.bytes
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
		c.s.CacheEvictions.Inc()
		if c.s.tr != nil {
			c.s.tr.Emit(c.s.node, "vblade", "cache-evict", trace.Int("lba", ext.lba))
		}
		misses = 0
	}
}

// invalidate drops cached extents overlapping a write: the store is the
// source of truth, so stale cache copies must go. In-flight fills are
// marked stale and dropped by their filler; pinned extents finish their
// current copy-outs safely (the metadata stays valid) but leave the table
// immediately.
func (c *extentCache) invalidate(tk uint32, lba, count int64) {
	for e := lba / c.extSectors; e*c.extSectors < lba+count; e++ {
		ext, ok := c.table[extentKey(tk, e)]
		if !ok {
			continue
		}
		delete(c.table, ext.key)
		if ext.filling {
			ext.stale = true
			continue
		}
		ext.dropped = true
		c.resident -= ext.bytes
	}
}

// reset empties the cache on a server crash: the in-memory extent cache
// does not survive. Entries are flagged dropped (order-independent — no
// map iteration), so mid-fill workers and coalesced waiters observe the
// loss deterministically when they wake.
func (c *extentCache) reset() {
	for _, ext := range c.ring {
		ext.dropped = true
	}
	c.table = make(map[uint64]*cacheExtent)
	c.ring = c.ring[:0]
	c.hand = 0
	c.resident = 0
}
