package vblade_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

const cacheExtentSectors = 64 // 32 KB extents for the cache tests

func TestCacheHitAndMiss(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 4)
	r.server.EnableCache(4<<20, cacheExtentSectors)
	r.k.Spawn("client", func(p *sim.Proc) {
		// First read: both covering extents are filled exactly once, however
		// many fragments the request splits into (later fragments of the same
		// read hit or coalesce on extents the first ones filled).
		if _, err := r.init.Read(p, 0, 2*cacheExtentSectors); err != nil {
			t.Error(err)
			return
		}
		coldHits := r.server.CacheHits.Value()
		if m := r.server.CacheMisses.Value(); m != 2 {
			t.Errorf("after cold read: misses=%d, want 2", m)
		}
		// Second read of the same range: served entirely from cache.
		if _, err := r.init.Read(p, 0, 2*cacheExtentSectors); err != nil {
			t.Error(err)
			return
		}
		if h := r.server.CacheHits.Value(); h <= coldHits {
			t.Error("warm read recorded no cache hits")
		}
		if m := r.server.CacheMisses.Value(); m != 2 {
			t.Errorf("warm read added misses: %d", m)
		}
	})
	r.k.Run()
	if hr := r.server.CacheHitRate(); hr <= 0 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestCacheMissIsSlowerThanHit(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 1)
	r.server.EnableCache(4<<20, cacheExtentSectors)
	var cold, warm sim.Duration
	r.k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		if _, err := r.init.Read(p, 0, cacheExtentSectors); err != nil {
			t.Error(err)
			return
		}
		cold = p.Now().Sub(start)
		start = p.Now()
		if _, err := r.init.Read(p, 0, cacheExtentSectors); err != nil {
			t.Error(err)
			return
		}
		warm = p.Now().Sub(start)
	})
	r.k.Run()
	if cold <= warm {
		t.Fatalf("cold read (%v) not slower than warm read (%v)", cold, warm)
	}
}

func TestCacheCoalescesConcurrentFills(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 4)
	r.server.EnableCache(4<<20, cacheExtentSectors)
	// Two concurrent reads of the same extent: the first worker fills from
	// cold storage, the second coalesces onto the in-flight fill instead of
	// issuing a second disk read.
	for i := 0; i < 2; i++ {
		r.k.Spawn("client", func(p *sim.Proc) {
			if _, err := r.init.Read(p, 0, cacheExtentSectors); err != nil {
				t.Error(err)
			}
		})
	}
	r.k.Run()
	if m := r.server.CacheMisses.Value(); m != 1 {
		t.Fatalf("misses = %d, want 1 (fills coalesced)", m)
	}
	if c := r.server.CoalescedReads.Value(); c == 0 {
		t.Fatal("no reads coalesced onto the in-flight fill")
	}
}

func TestCacheWriteInvalidates(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 2)
	r.server.EnableCache(4<<20, cacheExtentSectors)
	r.k.Spawn("client", func(p *sim.Proc) {
		if _, err := r.init.Read(p, 0, cacheExtentSectors); err != nil {
			t.Error(err)
			return
		}
		if err := r.init.Write(p, disk.Payload{LBA: 0, Count: 8, Source: disk.Synth{Seed: 3}}); err != nil {
			t.Error(err)
			return
		}
		missesBefore := r.server.CacheMisses.Value()
		pl, err := r.init.Read(p, 0, cacheExtentSectors)
		if err != nil {
			t.Error(err)
			return
		}
		// The write evicted the cached extent, so this read misses again...
		if m := r.server.CacheMisses.Value(); m != missesBefore+1 {
			t.Errorf("read after write: misses %d, want %d", m, missesBefore+1)
		}
		// ...and serves the written data, not the stale image bytes.
		got := pl.Bytes()[:8*disk.SectorSize]
		want := make([]byte, 8*disk.SectorSize)
		disk.Synth{Seed: 3}.Fill(0, want)
		if !bytes.Equal(got, want) {
			t.Error("read after write returned stale data")
		}
	})
	r.k.Run()
}

// evictionTrace runs a fixed scan pattern against a tiny cache budget and
// returns the ordered cache-evict event log plus final counters.
func evictionTrace(t *testing.T) (string, int64) {
	t.Helper()
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 2)
	tr := trace.NewRecorder(r.k)
	r.server.Instrument(metrics.NewRegistry(), tr, "server")
	// Budget of two extents: scanning eight forces six evictions in clock
	// order.
	r.server.EnableCache(2*cacheExtentSectors*disk.SectorSize, cacheExtentSectors)
	r.k.Spawn("client", func(p *sim.Proc) {
		for i := int64(0); i < 8; i++ {
			if _, err := r.init.Read(p, i*cacheExtentSectors, cacheExtentSectors); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.k.Run()
	var log bytes.Buffer
	for _, ev := range tr.EventsInCat("vblade") {
		fmt.Fprintf(&log, "%d %s %v\n", ev.Time, ev.Name, ev.Args)
	}
	return log.String(), r.server.CacheEvictions.Value()
}

func TestCacheEvictionOrderDeterministic(t *testing.T) {
	log1, ev1 := evictionTrace(t)
	log2, ev2 := evictionTrace(t)
	if ev1 == 0 {
		t.Fatal("tiny budget produced no evictions")
	}
	if ev1 != ev2 || log1 != log2 {
		t.Fatalf("eviction behavior not deterministic:\nrun1 (%d evictions):\n%s\nrun2 (%d evictions):\n%s",
			ev1, log1, ev2, log2)
	}
}

// faultTrace exercises the cache under a crash/restart plus a media-error
// window and returns the full Chrome trace serialization.
func faultTrace(t *testing.T) string {
	t.Helper()
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 4)
	tr := trace.NewRecorder(r.k)
	r.server.Instrument(metrics.NewRegistry(), tr, "server")
	r.server.EnableCache(1<<20, cacheExtentSectors)
	r.server.Target(0, 0).AddMediaError(30*cacheExtentSectors, cacheExtentSectors, sim.Time(400*sim.Millisecond))
	r.init.AddTarget(0x01, 0, 0) // failover loops back to the same target
	r.k.After(60*sim.Millisecond, func() { r.server.Crash() })
	r.k.After(120*sim.Millisecond, func() { r.server.Restart() })
	done, failed := 0, 0
	for c := 0; c < 3; c++ {
		base := int64(c * 40)
		r.k.Spawn("client", func(p *sim.Proc) {
			defer func() { done++ }()
			for i := int64(0); i < 24; i++ {
				lba := (base + i) * cacheExtentSectors / 2
				// Reads overlapping the crash outage or the media-error
				// window may fail; that is part of the schedule and must be
				// deterministic too.
				if _, err := r.init.Read(p, lba, cacheExtentSectors/2); err != nil {
					failed++
				}
			}
		})
	}
	r.k.Run()
	if done != 3 {
		t.Fatalf("only %d/3 clients finished", done)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "\nfailed-reads=%d hits=%d misses=%d coalesced=%d evictions=%d\n",
		failed, r.server.CacheHits.Value(), r.server.CacheMisses.Value(),
		r.server.CoalescedReads.Value(), r.server.CacheEvictions.Value())
	return buf.String()
}

func TestCacheDeterministicUnderFaults(t *testing.T) {
	t1 := faultTrace(t)
	t2 := faultTrace(t)
	if t1 != t2 {
		t.Fatal("cache-enabled trace differs across identical fault runs")
	}
	if len(t1) == 0 {
		t.Fatal("empty trace")
	}
}

func TestCacheSurvivesCrashMidFill(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 2)
	r.server.EnableCache(4<<20, cacheExtentSectors)
	r.server.ColdReadRate = 1e7 // one extent fill takes ~3.3ms
	// Crash while the first fill's cold-storage read is in flight: the fill
	// must be dropped, waiters must not hang, and after restart the extent
	// refills cleanly.
	r.k.After(sim.Millisecond, func() {
		if !r.server.Crashed() {
			r.server.Crash()
		}
	})
	r.k.After(50*sim.Millisecond, func() { r.server.Restart() })
	var ok bool
	r.k.Spawn("client", func(p *sim.Proc) {
		if _, err := r.init.Read(p, 0, cacheExtentSectors); err != nil {
			t.Error(err)
			return
		}
		ok = true
	})
	r.k.Run()
	if !ok {
		t.Fatal("read did not recover after crash mid-fill")
	}
	if r.server.Crashed() {
		t.Fatal("server still crashed")
	}
}
