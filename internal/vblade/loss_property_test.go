package vblade_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/aoe"
	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/sim"
	"repro/internal/vblade"
)

// TestReadsCorrectUnderRandomLossProperty: for random loss rates up to
// 15% per hop and random read patterns, every successful AoE read returns
// byte-exact image content.
func TestReadsCorrectUnderRandomLossProperty(t *testing.T) {
	img := disk.NewSynthImage("img", 16<<20, 9)
	f := func(seed int64, lossPct uint8, pattern []uint16) bool {
		loss := float64(lossPct%16) / 100
		k := sim.New(seed)
		sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
		params := ethernet.GigabitJumbo()
		params.LossRate = loss
		cl := nic.New(k, "cl", nic.IntelPro1000, 2, sw.Connect(params))
		sv := nic.New(k, "sv", nic.IntelX540, 1, sw.Connect(params))
		srv := vblade.NewServer(k, sv, 4)
		srv.AddTarget(0, 0, img)
		srv.Start()
		in := aoe.NewInitiator(k, cl, 1, 0, 0)
		in.MaxRetries = 24

		okAll := true
		k.Spawn("client", func(p *sim.Proc) {
			for _, pr := range pattern {
				lba := int64(pr) % (img.Sectors - 64)
				count := int64(pr)%63 + 1
				pl, err := in.Read(p, lba, count)
				if err != nil {
					// A timeout under heavy loss is acceptable; silent
					// corruption is not.
					continue
				}
				want := make([]byte, count*disk.SectorSize)
				img.ReadAt(lba, want)
				if !bytes.Equal(pl.Bytes(), want) {
					okAll = false
					return
				}
			}
		})
		k.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteAckIdempotentUnderLoss: lost write ACKs cause retransmitted
// writes; the store must converge to the written content exactly once.
func TestWriteAckIdempotentUnderLoss(t *testing.T) {
	img := disk.NewSynthImage("img", 4<<20, 9)
	k := sim.New(3)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	params := ethernet.GigabitJumbo()
	params.LossRate = 0.10
	cl := nic.New(k, "cl", nic.IntelPro1000, 2, sw.Connect(params))
	sv := nic.New(k, "sv", nic.IntelX540, 1, sw.Connect(params))
	srv := vblade.NewServer(k, sv, 2)
	tgt := srv.AddTarget(0, 0, img)
	srv.Start()
	in := aoe.NewInitiator(k, cl, 1, 0, 0)
	in.MaxRetries = 24

	src := disk.Synth{Seed: 0x77, Label: "w"}
	k.Spawn("client", func(p *sim.Proc) {
		for i := int64(0); i < 8; i++ {
			if err := in.Write(p, disk.Payload{LBA: i * 100, Count: 40, Source: src}); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	})
	k.Run()
	for i := int64(0); i < 8; i++ {
		got := make([]byte, 40*disk.SectorSize)
		tgt.Store().ReadAt(i*100, got)
		want := make([]byte, 40*disk.SectorSize)
		src.Fill(i*100, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("write %d not idempotent under loss", i)
		}
	}
}
