// Package vblade implements the AoE target: the storage server that
// exports OS images to deploying instances.
//
// The paper bases its server on the vblade userspace target and observes
// that the original is single-threaded and becomes the bottleneck under
// heavy read load, so it adds a thread pool (§4.2). This model reproduces
// both configurations: request service costs per-fragment CPU time on a
// worker, and the worker pool size decides how much of that cost overlaps.
package vblade

import (
	"sort"

	"repro/internal/aoe"
	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Target is one exported device: an image-backed store addressed by
// shelf.slot. Writes land in the store; reads prefer written data and fall
// back to the image.
type Target struct {
	Major uint16
	Minor uint8
	Image *disk.Image
	store *disk.Store

	// badRanges are injected media-error windows: reads overlapping one
	// before its deadline answer with an AoE error instead of data.
	badRanges []mediaError
}

// mediaError is one injected media-error window on a target.
type mediaError struct {
	lba, count int64
	until      sim.Time
}

// AddMediaError makes reads overlapping [lba, lba+count) fail with an AoE
// error response until the given instant — a disk surface fault that the
// drive's remapping eventually papers over.
func (t *Target) AddMediaError(lba, count int64, until sim.Time) {
	t.badRanges = append(t.badRanges, mediaError{lba: lba, count: count, until: until})
}

// HasMediaError reports whether a read of sector lba at instant now would
// hit an active media-error window — the query form of AddMediaError,
// used by fault-storm tests and health probes. Overlapping windows stack:
// the sector stays faulty until every window covering it has expired.
func (t *Target) HasMediaError(lba int64, now sim.Time) bool {
	return t.mediaFault(lba, 1, now)
}

// mediaFault reports whether a read of [lba, lba+count) at instant now
// hits an active media-error window.
func (t *Target) mediaFault(lba, count int64, now sim.Time) bool {
	for _, b := range t.badRanges {
		if now < b.until && lba < b.lba+b.count && b.lba < lba+count {
			return true
		}
	}
	return false
}

// Server is the AoE target daemon.
type Server struct {
	k   *sim.Kernel
	nic *nic.NIC

	targets map[uint32]*Target
	queue   *sim.Queue[*ethernet.Frame]
	// pool recycles outbound response frames; they come back when the
	// initiator (or a drop point on the path) releases them.
	pool aoe.FramePool
	// cache is the optional shared-image serving cache (see EnableCache);
	// nil keeps the original whole-image-in-page-cache model.
	cache *extentCache

	// Threads is the worker-pool size; 1 reproduces original vblade.
	Threads int
	// PerFragCPU is the processing cost per fragment on one worker. The
	// default calibrates a single-threaded server to saturate below
	// gigabit line rate, as the paper observed.
	PerFragCPU sim.Duration
	// CopyRate is the memory copy rate for payload bytes (images are
	// served from the server's page cache).
	CopyRate float64
	// ColdReadRate is the cold-storage read rate charged on extent-cache
	// misses (only meaningful with EnableCache). The default models a
	// single SATA spindle behind the page cache.
	ColdReadRate float64

	// crashed marks a crashed server: arriving frames are dropped and
	// mid-service workers suppress their responses. Restart clears it.
	crashed bool

	Requests     metrics.Counter
	BytesServed  metrics.Counter
	BytesStored  metrics.Counter
	WriteErrors  metrics.Counter
	UnknownDrops metrics.Counter
	MediaErrors  metrics.Counter
	Crashes      metrics.Counter

	// Extent-cache counters (see EnableCache).
	CacheHits      metrics.Counter
	CacheMisses    metrics.Counter
	CacheEvictions metrics.Counter
	CoalescedReads metrics.Counter

	// Observability (see Instrument): a span per served fragment plus the
	// live queue-depth gauge.
	node  string
	tr    *trace.Recorder
	depth *metrics.Gauge
}

// Instrument adopts the server's counters into reg under "vblade.*" names
// labeled with the node, and makes every served fragment record a span on
// tr (nil tr: no spans). No-op counters on a nil registry.
func (s *Server) Instrument(reg *metrics.Registry, tr *trace.Recorder, node string) {
	s.node, s.tr = node, tr
	l := metrics.L("node", node)
	reg.RegisterCounter("vblade.requests", &s.Requests, l)
	reg.RegisterCounter("vblade.bytes_served", &s.BytesServed, l)
	reg.RegisterCounter("vblade.bytes_stored", &s.BytesStored, l)
	reg.RegisterCounter("vblade.write_errors", &s.WriteErrors, l)
	reg.RegisterCounter("vblade.unknown_drops", &s.UnknownDrops, l)
	reg.RegisterCounter("vblade.media_errors", &s.MediaErrors, l)
	reg.RegisterCounter("vblade.crashes", &s.Crashes, l)
	reg.RegisterCounter("vblade.cache_hits", &s.CacheHits, l)
	reg.RegisterCounter("vblade.cache_misses", &s.CacheMisses, l)
	reg.RegisterCounter("vblade.cache_evictions", &s.CacheEvictions, l)
	reg.RegisterCounter("vblade.coalesced_reads", &s.CoalescedReads, l)
	s.depth = reg.Gauge("vblade.queue_depth", l)
}

// NewServer returns a server speaking through n. Call AddTarget then Start.
func NewServer(k *sim.Kernel, n *nic.NIC, threads int) *Server {
	return &Server{
		k:            k,
		nic:          n,
		targets:      make(map[uint32]*Target),
		queue:        sim.NewQueue[*ethernet.Frame](k, "vblade.q"),
		Threads:      threads,
		PerFragCPU:   480 * sim.Microsecond,
		CopyRate:     6e9,
		ColdReadRate: 1.5e8,
	}
}

// ShareFramePool makes the server's response-frame pool safe for
// cross-shard release (initiators release response frames from their own
// shard domains). Sharded testbeds call this before traffic starts.
func (s *Server) ShareFramePool() { s.pool.Share() }

func targetKey(major uint16, minor uint8) uint32 { return uint32(major)<<8 | uint32(minor) }

// AddTarget exports image at shelf major, slot minor.
func (s *Server) AddTarget(major uint16, minor uint8, img *disk.Image) *Target {
	t := &Target{Major: major, Minor: minor, Image: img, store: disk.NewStore(img.Sectors)}
	t.store.Write(0, img.Sectors, img)
	s.targets[targetKey(major, minor)] = t
	return t
}

// Target returns the exported target at major.minor, or nil.
func (s *Server) Target(major uint16, minor uint8) *Target {
	return s.targets[targetKey(major, minor)]
}

// Store exposes the target's backing store (for test setup/inspection).
func (t *Target) Store() *disk.Store { return t.store }

// Start begins receiving and spawns the worker pool.
func (s *Server) Start() {
	s.nic.SetOnReceive(func(f *ethernet.Frame) {
		if f.EtherType != aoe.EtherType {
			f.Release()
			return
		}
		// Frames racing a Stop or Crash (already serialized onto the wire,
		// arriving after the queue closed) are dropped, never pushed — a
		// stopped daemon must not panic on late traffic.
		if s.crashed || s.queue.Closed() {
			s.UnknownDrops.Inc()
			f.Release()
			return
		}
		f.QueuedAt = s.k.Now() // queue-wait attribution; overwrites pooled leftovers
		s.queue.Push(f)
	})
	for i := 0; i < s.Threads; i++ {
		s.k.Spawn("vblade.worker", func(p *sim.Proc) {
			q := s.queue // this incarnation's queue; Restart swaps in a new one
			var held []*cacheExtent
			for {
				f, ok := q.Pop(p)
				if !ok {
					return
				}
				held = s.serve(p, f, held)
			}
		})
	}
}

// Stop closes the request queue; workers drain queued requests and exit.
// Requests still on the wire are dropped on arrival; their initiators time
// out, retransmit, and eventually fail over or fail.
func (s *Server) Stop() { s.queue.Close() }

// Crash models a hard server failure: the queue is discarded along with
// every request in it, arriving frames fall on the floor, and workers
// mid-service never send their responses. Target write state is lost on
// the subsequent Restart (the page cache never reached stable storage).
func (s *Server) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.Crashes.Inc()
	s.tr.Emit(s.node, "vblade", "crash")
	for { // drop everything already queued
		f, ok := s.queue.TryPop()
		if !ok {
			break
		}
		f.Release()
	}
	s.queue.Close() // workers drain to the closed empty queue and exit
	if s.cache != nil {
		s.cache.reset() // the in-memory extent cache dies with the daemon
	}
	if s.depth != nil {
		s.depth.Set(0)
	}
}

// Restart brings a crashed (or stopped) server back: a fresh queue, a
// fresh worker pool, and — for a crash — each target's store reset to the
// pristine image, modeling the loss of all write state.
func (s *Server) Restart() {
	if s.crashed {
		keys := make([]uint32, 0, len(s.targets))
		for k := range s.targets {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			t := s.targets[k]
			t.store = disk.NewStore(t.Image.Sectors)
			t.store.Write(0, t.Image.Sectors, t.Image)
			t.badRanges = nil
		}
	}
	s.crashed = false
	s.queue = sim.NewQueue[*ethernet.Frame](s.k, "vblade.q")
	s.tr.Emit(s.node, "vblade", "restart")
	s.Start()
}

// Crashed reports whether the server is currently crashed.
func (s *Server) Crashed() bool { return s.crashed }

// QueueDepth reports requests waiting for a worker.
func (s *Server) QueueDepth() int { return s.queue.Len() }

// serve handles one request frame. held is the worker's reusable
// extent-pin scratch; it is returned (always empty again) so the worker
// can carry its backing array across serves.
func (s *Server) serve(p *sim.Proc, f *ethernet.Frame, held []*cacheExtent) []*cacheExtent {
	msg, ok := f.Payload.(*aoe.Message)
	if !ok || msg.IsResponse() {
		s.UnknownDrops.Inc()
		f.Release()
		return held
	}
	t := s.Target(msg.Major, msg.Minor)
	if t == nil {
		s.UnknownDrops.Inc()
		f.Release()
		return held
	}
	s.Requests.Inc()
	if s.depth != nil {
		s.depth.Set(float64(s.queue.Len()))
	}

	// Copy everything the service path needs out of the request, then drop
	// the frame's last reference: the worker sleeps below, and the
	// initiator may recycle the request pair for a retransmit meanwhile.
	hdr := msg.Header
	replyTo := f.Src
	isWrite := msg.IsWrite()
	flowID := f.FlowID
	queuedAt := f.QueuedAt
	var writeSrc disk.SectorSource
	if isWrite {
		writeSrc = msg.Payload.Source
	}
	f.Release()

	lba := int64(hdr.LBA)
	count := int64(hdr.Count)
	bytes := count * disk.SectorSize

	// Building span attributes boxes values even when no recorder is
	// installed, so the uninstrumented hot path skips Begin entirely
	// (End is nil-safe).
	var sp *trace.Span
	if s.tr != nil {
		sp = s.tr.Begin(s.node, "aoe", "serve",
			trace.Int("lba", lba), trace.Int("count", count),
			trace.Int("qwait", int64(s.k.Now().Sub(queuedAt))))
		sp.FlowFrom = flowID // links back to the initiator's request span
	}
	defer sp.End()

	respF, resp := s.pool.Get()
	resp.Header = hdr
	resp.Flags |= aoe.FlagResponse

	p.Sleep(s.PerFragCPU)
	switch {
	case lba < 0 || count <= 0 || lba+count > t.store.Sectors():
		resp.Flags |= aoe.FlagError
		resp.Error = 1
		if isWrite {
			s.WriteErrors.Inc()
		}
	case !isWrite && t.mediaFault(lba, count, s.k.Now()):
		// Injected media-error window: the drive answers the read with an
		// error status instead of data. The initiator fails over to a
		// secondary target if one is configured, else errors the request.
		resp.Flags |= aoe.FlagError
		resp.Error = 2
		s.MediaErrors.Inc()
	case isWrite:
		p.Sleep(sim.RateDuration(bytes, s.CopyRate))
		t.store.Write(lba, count, writeSrc)
		s.BytesStored.Add(bytes)
		if s.cache != nil {
			// The store is now the truth; stale cached extents must go.
			s.cache.invalidate(targetKey(hdr.Major, hdr.Minor), lba, count)
		}
	default:
		if s.cache != nil {
			// Pin the covering extents, paying cold-storage reads for
			// misses (coalesced with concurrent fills), before the
			// memory copy-out below.
			t0 := s.k.Now()
			held = s.cache.acquire(p, targetKey(hdr.Major, hdr.Minor), t, lba, count, held)
			if sp != nil {
				// Cold-storage stall (miss fill or coalesced wait) as an
				// attribute, so analysis can split service time.
				sp.Args = append(sp.Args, trace.Int("cold", int64(s.k.Now().Sub(t0))))
			}
		}
		p.Sleep(sim.RateDuration(bytes, s.CopyRate))
		resp.Payload = t.store.ReadPayload(lba, count)
		s.BytesServed.Add(bytes)
		if s.cache != nil {
			held = s.cache.release(held)
		}
	}

	if s.crashed {
		// The server died while this worker was mid-service; the response
		// is never sent.
		respF.Release()
		return held
	}
	respF.Dst = replyTo
	respF.EtherType = aoe.EtherType
	respF.Size = ethernet.HeaderSize + resp.WireSize()
	respF.FlowID = sp.SpanID() // 0 when untraced; overwrites pooled leftovers
	s.nic.Send(respF)
	return held
}
