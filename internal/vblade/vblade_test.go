package vblade_test

import (
	"bytes"
	"testing"

	"repro/internal/aoe"
	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/sim"
	"repro/internal/vblade"
)

// rig wires one client and one server through a jumbo-frame gigabit switch.
type rig struct {
	k      *sim.Kernel
	server *vblade.Server
	init   *aoe.Initiator
	client *nic.NIC
	clLink *ethernet.Link
	svLink *ethernet.Link
}

func newRig(t *testing.T, img *disk.Image, threads int) *rig {
	t.Helper()
	k := sim.New(42)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	clLink := sw.Connect(ethernet.GigabitJumbo())
	svLink := sw.Connect(ethernet.GigabitJumbo())
	client := nic.New(k, "cl0", nic.IntelPro1000, 0x02, clLink)
	servNIC := nic.New(k, "sv0", nic.IntelX540, 0x01, svLink)
	srv := vblade.NewServer(k, servNIC, threads)
	srv.AddTarget(0, 0, img)
	srv.Start()
	in := aoe.NewInitiator(k, client, 0x01, 0, 0)
	return &rig{k: k, server: srv, init: in, client: client, clLink: clLink, svLink: svLink}
}

func TestReadRoundTrip(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 4)
	var got, want []byte
	r.k.Spawn("client", func(p *sim.Proc) {
		pl, err := r.init.Read(p, 100, 64)
		if err != nil {
			t.Error(err)
			return
		}
		got = pl.Bytes()
	})
	r.k.Run()
	want = make([]byte, 64*disk.SectorSize)
	img.ReadAt(100, want)
	if !bytes.Equal(got, want) {
		t.Fatal("AoE read returned wrong content")
	}
	if r.init.Requests.Value() != 1 {
		t.Fatalf("Requests = %d", r.init.Requests.Value())
	}
}

func TestLargeReadFragments(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 4)
	const count = 2048 // 1 MB: 121 jumbo fragments
	r.k.Spawn("client", func(p *sim.Proc) {
		pl, err := r.init.Read(p, 0, count)
		if err != nil {
			t.Error(err)
			return
		}
		if pl.Count != count {
			t.Errorf("payload count = %d", pl.Count)
		}
		// Symbolic reassembly: all fragments share the image source.
		if pl.Source != disk.SectorSource(img) {
			t.Errorf("payload source = %s, want image", pl.Source.Name())
		}
	})
	r.k.Run()
	if got := r.init.FragmentsRecvd.Value(); got != 121 {
		t.Fatalf("fragments received = %d, want 121", got)
	}
}

func TestWriteThenRead(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 2)
	data := bytes.Repeat([]byte{0xCD}, 3*disk.SectorSize)
	r.k.Spawn("client", func(p *sim.Proc) {
		src := disk.NewBuffer(50, data, "w")
		if err := r.init.Write(p, disk.Payload{LBA: 50, Count: 3, Source: src}); err != nil {
			t.Error(err)
			return
		}
		pl, err := r.init.Read(p, 50, 3)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(pl.Bytes(), data) {
			t.Error("read after write returned stale content")
		}
	})
	r.k.Run()
	if r.server.BytesStored.Value() != 3*disk.SectorSize {
		t.Fatalf("BytesStored = %d", r.server.BytesStored.Value())
	}
}

func TestOutOfRangeReadFails(t *testing.T) {
	img := disk.NewSynthImage("tiny", 1<<20, 7) // 2048 sectors
	r := newRig(t, img, 1)
	r.k.Spawn("client", func(p *sim.Proc) {
		if _, err := r.init.Read(p, 4000, 10); err == nil {
			t.Error("out-of-range read succeeded")
		}
	})
	r.k.Run()
}

func TestRetransmissionUnderLoss(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 4)
	r.clLink.SetLossRate(0.05)
	r.svLink.SetLossRate(0.05)
	var got []byte
	r.k.Spawn("client", func(p *sim.Proc) {
		pl, err := r.init.Read(p, 0, 1024)
		if err != nil {
			t.Error(err)
			return
		}
		got = pl.Bytes()
	})
	r.k.Run()
	want := make([]byte, 1024*disk.SectorSize)
	img.ReadAt(0, want)
	if !bytes.Equal(got, want) {
		t.Fatal("content corrupted by retransmission")
	}
	if r.init.Retransmits.Value() == 0 {
		t.Fatal("no retransmissions despite loss")
	}
}

func TestRequestFailsUnderTotalLoss(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 1<<20, 7)
	r := newRig(t, img, 1)
	r.svLink.SetLossRate(1.0) // nothing reaches the server
	r.k.Spawn("client", func(p *sim.Proc) {
		if _, err := r.init.Read(p, 0, 8); err == nil {
			t.Error("read succeeded with a dead link")
		}
	})
	r.k.Run()
}

func TestSingleThreadSlowerThanPool(t *testing.T) {
	// The paper's motivation for the thread pool: a single-threaded
	// vblade bottlenecks large transfers.
	elapsed := func(threads int) sim.Duration {
		img := disk.NewSynthImage("ubuntu", 64<<20, 7)
		r := newRig(t, img, threads)
		var d sim.Duration
		r.k.Spawn("client", func(p *sim.Proc) {
			start := p.Now()
			for i := int64(0); i < 32; i++ { // 32 MB total
				if _, err := r.init.Read(p, i*2048, 2048); err != nil {
					t.Error(err)
					return
				}
			}
			d = p.Now().Sub(start)
		})
		r.k.Run()
		return d
	}
	single := elapsed(1)
	pooled := elapsed(8)
	if single <= pooled {
		t.Fatalf("single-thread %v not slower than pool %v", single, pooled)
	}
	// Pooled server should get close to gigabit line rate for 32 MB:
	// ≥80 MB/s. Single-threaded should be visibly below it.
	rate := func(d sim.Duration) float64 { return 32 * 1e6 * 1.048576 / d.Seconds() / 1e6 }
	if got := rate(pooled); got < 80 {
		t.Fatalf("pooled rate = %.1f MB/s, want >= 80", got)
	}
	t.Logf("single=%.1f MB/s pooled=%.1f MB/s", rate(single), rate(pooled))
}

func TestUnknownTargetDropped(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 1<<20, 7)
	r := newRig(t, img, 1)
	bad := aoe.NewInitiator(r.k, r.client, 0x01, 9, 9) // nonexistent shelf
	bad.MaxRetries = 1
	r.k.Spawn("client", func(p *sim.Proc) {
		if _, err := bad.Read(p, 0, 1); err == nil {
			t.Error("read from unknown target succeeded")
		}
	})
	r.k.Run()
	if r.server.UnknownDrops.Value() == 0 {
		t.Fatal("UnknownDrops not counted")
	}
}

func TestRTTEstimateReasonable(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 4)
	r.k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := r.init.Read(p, int64(i)*17, 17); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.k.Run()
	rtt := r.init.RTT()
	// One fragment round trip: ~150µs serialization + service. The EWMA
	// should have converged well below the 2ms initial value.
	if rtt > sim.Millisecond || rtt < 50*sim.Microsecond {
		t.Fatalf("RTT estimate = %v, want ~100-600µs", rtt)
	}
}

func TestStopMidFlightDoesNotPanic(t *testing.T) {
	// Closing the queue with requests pending (queued, mid-service, and
	// still on the wire) must not panic; the in-flight initiator times out,
	// retransmits into the void, and fails cleanly.
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	r := newRig(t, img, 1)
	r.init.MaxRetries = 4
	r.k.After(2*sim.Millisecond, r.server.Stop) // mid-stream
	var err error
	var completed int
	r.k.Spawn("client", func(p *sim.Proc) {
		// A stream of requests: the ones queued before Stop drain, the ones
		// arriving after the close get dropped and must fail by timeout.
		for i := int64(0); i < 16; i++ {
			if _, err = r.init.Read(p, i*512, 512); err != nil {
				return
			}
			completed++
		}
	})
	r.k.Run()
	if err == nil {
		t.Fatal("read against a stopped server succeeded")
	}
	if completed == 0 {
		t.Fatal("no request completed before the stop; scenario did not exercise mid-flight close")
	}
	if r.server.UnknownDrops.Value() == 0 {
		t.Fatal("frames arriving after Stop were not dropped/counted")
	}
}

func TestCrashLosesWriteState(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 1<<20, 7)
	r := newRig(t, img, 2)
	data := bytes.Repeat([]byte{0xEE}, 2*disk.SectorSize)
	want := make([]byte, 2*disk.SectorSize)
	img.ReadAt(300, want)
	var got []byte
	r.k.Spawn("client", func(p *sim.Proc) {
		src := disk.NewBuffer(300, data, "w")
		if err := r.init.Write(p, disk.Payload{LBA: 300, Count: 2, Source: src}); err != nil {
			t.Error(err)
			return
		}
		r.server.Crash()
		r.server.Restart()
		pl, err := r.init.Read(p, 300, 2)
		if err != nil {
			t.Error(err)
			return
		}
		got = pl.Bytes()
	})
	r.k.Run()
	if bytes.Equal(got, data) {
		t.Fatal("write survived a crash; page-cache state should be lost")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restarted server does not serve the pristine image")
	}
	if r.server.Crashes.Value() != 1 {
		t.Fatalf("Crashes = %d, want 1", r.server.Crashes.Value())
	}
}

func TestCrashMidTransferFailsOverToSecondary(t *testing.T) {
	// Two vblade servers export the same image; the primary crashes
	// mid-read and the initiator completes via the secondary, byte-exact.
	img := disk.NewSynthImage("ubuntu", 8<<20, 7)
	k := sim.New(42)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	clLink := sw.Connect(ethernet.GigabitJumbo())
	client := nic.New(k, "cl0", nic.IntelPro1000, 0x02, clLink)
	newServer := func(name string, mac ethernet.MAC) *vblade.Server {
		l := sw.Connect(ethernet.GigabitJumbo())
		n := nic.New(k, name, nic.IntelX540, mac, l)
		s := vblade.NewServer(k, n, 4)
		s.AddTarget(0, 0, img)
		s.Start()
		return s
	}
	primary := newServer("sv0", 0x01)
	newServer("sv1", 0x03)
	in := aoe.NewInitiator(k, client, 0x01, 0, 0)
	in.AddTarget(0x03, 0, 0)
	in.MaxRetries = 4
	k.After(3*sim.Millisecond, primary.Crash)
	var got []byte
	k.Spawn("client", func(p *sim.Proc) {
		pl, err := in.Read(p, 0, 2048)
		if err != nil {
			t.Error(err)
			return
		}
		got = pl.Bytes()
	})
	k.Run()
	want := make([]byte, 2048*disk.SectorSize)
	img.ReadAt(0, want)
	if !bytes.Equal(got, want) {
		t.Fatal("failover read returned wrong content")
	}
	if in.Failovers.Value() != 1 {
		t.Fatalf("Failovers = %d, want 1", in.Failovers.Value())
	}
	if !primary.Crashed() {
		t.Fatal("primary not marked crashed")
	}
}

func TestMediaErrorWindow(t *testing.T) {
	img := disk.NewSynthImage("ubuntu", 1<<20, 7)
	r := newRig(t, img, 2)
	r.init.MaxRetries = 2
	// Sectors [100,200) are unreadable until t=1s.
	r.server.Target(0, 0).AddMediaError(100, 100, sim.Time(sim.Second))
	var early, late error
	r.k.Spawn("client", func(p *sim.Proc) {
		_, early = r.init.Read(p, 120, 8) // inside the window
		p.Sleep(sim.Second)
		_, late = r.init.Read(p, 120, 8) // window expired
	})
	r.k.Run()
	if early == nil {
		t.Fatal("read inside the media-error window succeeded")
	}
	if late != nil {
		t.Fatalf("read after the window expired failed: %v", late)
	}
	if r.server.MediaErrors.Value() == 0 {
		t.Fatal("MediaErrors not counted")
	}
}
