// Package workload implements the paper's benchmark programs as models
// that consume simulated CPU, memory bandwidth, and real simulated disk
// and network I/O: YCSB driving memcached and Cassandra (§5.2), OSU MPI
// collectives (§5.3), kernbench (§5.4), SysBench threads/memory (§5.5.1),
// fio and ioping (§5.5.2), and the perftest RDMA microbenchmarks (§5.5.3).
package workload

import (
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DBProfile describes a database server under a YCSB workload: base
// bare-metal performance plus its resource sensitivities. Throughput and
// latency shift with the platform's current slowdown, and the disk
// traffic it generates interacts with BMcast's background copy for real.
type DBProfile struct {
	Name string
	// BaseThroughput is bare-metal transactions/sec with the paper's
	// YCSB client setup.
	BaseThroughput float64
	// BaseLatency is the bare-metal mean request latency.
	BaseLatency sim.Duration
	// MemShare is the memory-bound fraction of request processing
	// (memcached is cache-sensitive; nested paging hits it harder).
	MemShare float64
	// ReadFraction of the YCSB mix.
	ReadFraction float64
	// LogBytesPerSec is the commit-log write stream (Cassandra's
	// write-intensive mix); 0 for a pure in-memory store.
	LogBytesPerSec float64
	// FlushBytes/FlushEvery model periodic memtable flushes to disk.
	FlushBytes int64
	FlushEvery sim.Duration
	// LogRegionSectors is where the log/flush writes land on disk.
	LogRegionStart int64
}

// Memcached returns the read-intensive profile (95/5, §5.2): bare metal
// serves ≈36.5 KT/s at ≈271 µs.
func Memcached() DBProfile {
	return DBProfile{
		Name:           "memcached",
		BaseThroughput: 36500,
		BaseLatency:    271 * sim.Microsecond,
		MemShare:       0.15,
		ReadFraction:   0.95,
		LogRegionStart: 56 << 21, // unused-space sectors (28 GB in)
	}
}

// Cassandra returns the write-intensive profile (30/70, §5.2): bare metal
// serves ≈60 KT/s at ≈2.44 ms, with a continuous commit-log stream and
// periodic SSTable flushes.
func Cassandra() DBProfile {
	return DBProfile{
		Name:           "cassandra",
		BaseThroughput: 60000,
		BaseLatency:    2443 * sim.Microsecond,
		MemShare:       0.15,
		ReadFraction:   0.30,
		LogBytesPerSec: 3.5e6,
		FlushBytes:     24 << 20,
		FlushEvery:     20 * sim.Second,
		LogRegionStart: 56 << 21,
	}
}

// YCSB drives a database instance and records throughput and latency
// series, like the paper's client instance does.
type YCSB struct {
	OS      *guest.OS
	Profile DBProfile
	// Quantum is the measurement granularity.
	Quantum sim.Duration

	Throughput metrics.Series // transactions/sec over time
	Latency    metrics.Series // mean µs over time
	Ops        metrics.Counter

	logCursor   int64
	flushCursor int64
	stop        bool
}

// NewYCSB returns a benchmark bound to the guest OS under test.
func NewYCSB(o *guest.OS, profile DBProfile) *YCSB {
	y := &YCSB{OS: o, Profile: profile, Quantum: 500 * sim.Millisecond}
	y.Throughput.Name = profile.Name + ".tput"
	y.Latency.Name = profile.Name + ".lat"
	y.logCursor = profile.LogRegionStart
	y.flushCursor = profile.LogRegionStart + (4 << 21) // flushes 4 GB past the log
	return y
}

// Stop ends the run after the current quantum.
func (y *YCSB) Stop() { y.stop = true }

// Run executes the benchmark for the given duration, blocking the process.
// Each quantum the database serves requests at a rate set by the current
// platform slowdown, writes its log/flush traffic through the real block
// driver, and the series record what a client would measure.
func (y *YCSB) Run(p *sim.Proc, d sim.Duration) {
	pr := y.Profile
	world := y.OS.M.World
	deadline := p.Now().Add(d)
	lastFlush := p.Now()
	for p.Now() < deadline && !y.stop {
		qStart := p.Now()
		slow := world.Slowdown(pr.MemShare)

		// Commit-log writes for this quantum (sequential appends).
		if pr.LogBytesPerSec > 0 {
			bytes := int64(pr.LogBytesPerSec * y.Quantum.Seconds())
			y.writeStream(p, &y.logCursor, bytes, "db-log")
		}
		// Periodic memtable flush.
		if pr.FlushBytes > 0 && p.Now().Sub(lastFlush) >= pr.FlushEvery {
			lastFlush = p.Now()
			y.writeStream(p, &y.flushCursor, pr.FlushBytes, "db-flush")
		}

		// Disk time eaten out of the quantum reduces served requests.
		ioTime := p.Now().Sub(qStart)
		if rest := y.Quantum - ioTime; rest > 0 {
			p.Sleep(rest)
		}
		avail := 1.0 - float64(ioTime)/float64(y.Quantum)
		if avail < 0.05 {
			avail = 0.05
		}
		tput := pr.BaseThroughput / slow * avail
		// Request latency stretches with the slowdown plus the platform's
		// network-path latency (two hops per transaction).
		lat := sim.Duration(float64(pr.BaseLatency)*slow) + 2*world.Overheads.NetPathLatency
		y.Ops.Add(int64(tput * y.Quantum.Seconds()))
		y.Throughput.Append(p.Now(), tput)
		y.Latency.Append(p.Now(), lat.Microseconds())
	}
}

// writeStream appends bytes at the cursor through the real driver in
// driver-sized chunks, advancing the cursor.
func (y *YCSB) writeStream(p *sim.Proc, cursor *int64, bytes int64, label string) {
	src := disk.Synth{Seed: int64(len(label)) * 7919, Label: label}
	sectors := (bytes + disk.SectorSize - 1) / disk.SectorSize
	const logChunk = 512 // 256 KB commit-log sync granularity
	for sectors > 0 {
		n := sectors
		if n > logChunk {
			n = logChunk
		}
		if *cursor+n >= y.OS.M.Disk.Sectors {
			*cursor = y.Profile.LogRegionStart // wrap the log region
		}
		if err := y.OS.WriteSectors(p, disk.Payload{LBA: *cursor, Count: n, Source: src}); err != nil {
			return // treat write failures as a stalled log; throughput shows it
		}
		*cursor += n
		sectors -= n
	}
}
