package workload

import (
	"fmt"

	"repro/internal/hw/ib"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Collective names the OSU micro-benchmark operations (§5.3).
type Collective int

// The collectives the paper's Figure 6 reports.
const (
	Barrier Collective = iota
	Broadcast
	Allreduce
	Allgather
	Alltoall
	Reduce
	Gather
	Scatter
)

var collectiveNames = [...]string{
	"Barrier", "Bcast", "Allreduce", "Allgather", "Alltoall", "Reduce", "Gather", "Scatter",
}

func (c Collective) String() string { return collectiveNames[c] }

// AllCollectives lists every implemented collective.
func AllCollectives() []Collective {
	return []Collective{Barrier, Broadcast, Allreduce, Allgather, Alltoall, Reduce, Gather, Scatter}
}

// MPIRank is one process of the MPI job: a machine with its HCA.
type MPIRank struct {
	M    *machine.Machine
	HCA  *ib.HCA
	Rank int
}

// MPICluster is an MPI job across machines connected by one IB fabric.
type MPICluster struct {
	k     *sim.Kernel
	Ranks []*MPIRank
}

// NewMPICluster builds a job from machines that share an IB fabric.
func NewMPICluster(k *sim.Kernel, machines []*machine.Machine) (*MPICluster, error) {
	c := &MPICluster{k: k}
	for i, m := range machines {
		if m.IB == nil {
			return nil, fmt.Errorf("workload: machine %s has no IB HCA", m.Name)
		}
		c.Ranks = append(c.Ranks, &MPIRank{M: m, HCA: m.IB, Rank: i})
	}
	return c, nil
}

// rounds computes the per-rank communication schedule for a collective on
// n ranks with the given message size: for each synchronized step, which
// peer each rank exchanges with (-1 = idle). The schedules follow MPICH's
// standard algorithms: recursive doubling for Barrier/Allreduce, binomial
// trees for Bcast/Reduce/Gather/Scatter, ring for Allgather, pairwise for
// Alltoall.
func rounds(c Collective, n int) [][]int {
	var steps [][]int
	switch c {
	case Barrier, Allreduce:
		for dist := 1; dist < n; dist *= 2 {
			step := make([]int, n)
			for r := 0; r < n; r++ {
				peer := r ^ dist
				if peer < n {
					step[r] = peer
				} else {
					step[r] = -1
				}
			}
			steps = append(steps, step)
		}
	case Broadcast, Reduce, Gather, Scatter:
		for dist := 1; dist < n; dist *= 2 {
			step := make([]int, n)
			for r := 0; r < n; r++ {
				step[r] = -1
			}
			for r := 0; r < n; r += 2 * dist {
				if r+dist < n {
					step[r] = r + dist
					step[r+dist] = r
				}
			}
			steps = append(steps, step)
		}
	case Allgather:
		for s := 1; s < n; s++ {
			step := make([]int, n)
			for r := 0; r < n; r++ {
				step[r] = (r + s) % n // ring neighbor exchange
			}
			steps = append(steps, step)
		}
	case Alltoall:
		for s := 1; s < n; s++ {
			step := make([]int, n)
			for r := 0; r < n; r++ {
				step[r] = r ^ s
				if step[r] >= n {
					step[r] = -1
				}
			}
			steps = append(steps, step)
		}
	}
	return steps
}

// Latency measures the mean completion time of the collective with the
// given message size over iterations, as osu_* does. Each synchronized
// step completes when the slowest rank finishes: per-rank time is the
// wire transfer plus per-message host processing (slowed by the
// platform) plus a scheduling-jitter draw — the amplification that makes
// conventional VMMs so costly on collectives.
func (c *MPICluster) Latency(p *sim.Proc, col Collective, msgBytes int64, iterations int) sim.Duration {
	n := len(c.Ranks)
	steps := rounds(col, n)
	const hostProc = 1500 * sim.Nanosecond
	// Ring-structured collectives pipeline dependent sends around the
	// ring, so one delayed rank convoys its successors: scheduling
	// jitter is amplified several-fold compared to tree/doubling
	// schedules that resynchronize globally each step.
	skewAmp := 1
	if col == Allgather || col == Alltoall {
		skewAmp = 4
	}
	var total sim.Duration
	for it := 0; it < iterations; it++ {
		for _, step := range steps {
			var worst sim.Duration
			for r, peer := range step {
				if peer < 0 {
					continue
				}
				rank := c.Ranks[r]
				f := rank.HCA
				wire := sim.RateDuration(msgBytes, 3.2e9) +
					1300*sim.Nanosecond + f.ExtraLatency + c.Ranks[peer].HCA.ExtraLatency
				proc := sim.Duration(float64(hostProc) * rank.M.World.Slowdown(0.3))
				jitter := rank.M.World.Overheads.Jitter(c.k.Rand()) * sim.Duration(skewAmp)
				if d := wire + proc + jitter; d > worst {
					worst = d
				}
			}
			total += worst
			p.Sleep(worst)
		}
	}
	return total / sim.Duration(iterations)
}
