package workload

import (
	"repro/internal/hw/ib"
	"repro/internal/sim"
)

// RDMABwResult is one ib_rdma_bw measurement.
type RDMABwResult struct {
	Bytes      int64
	Iterations int
	Throughput float64 // bytes/sec
}

// RDMABandwidth runs ib_rdma_bw (§5.5.3): post iterations RDMA writes of
// msgBytes pipelined (queue depth qd), poll completions, report
// throughput. The link saturates on every platform — virtualization
// overhead hides behind the HCA's command queuing, exactly as the paper
// observes.
func RDMABandwidth(p *sim.Proc, src, dst *ib.HCA, msgBytes int64, iterations, qd int) RDMABwResult {
	start := p.Now()
	inFlight := 0
	for i := 0; i < iterations; i++ {
		src.Post(dst, msgBytes)
		inFlight++
		if inFlight >= qd {
			src.PollCQ(p)
			inFlight--
		}
	}
	for inFlight > 0 {
		src.PollCQ(p)
		inFlight--
	}
	elapsed := p.Now().Sub(start)
	return RDMABwResult{
		Bytes:      msgBytes,
		Iterations: iterations,
		Throughput: float64(msgBytes) * float64(iterations) / elapsed.Seconds(),
	}
}

// RDMALatResult is one ib_rdma_lat measurement.
type RDMALatResult struct {
	Bytes int64
	Mean  sim.Duration
}

// RDMALatency runs ib_rdma_lat (§5.5.3): iterations sequential RDMA
// writes of msgBytes, reporting the mean per-operation latency. Here the
// IOMMU/interrupt cost of device assignment is exposed (+23.6% on KVM).
func RDMALatency(p *sim.Proc, src, dst *ib.HCA, msgBytes int64, iterations int) RDMALatResult {
	var total sim.Duration
	for i := 0; i < iterations; i++ {
		total += src.RDMAWrite(p, dst, msgBytes)
	}
	return RDMALatResult{Bytes: msgBytes, Mean: total / sim.Duration(iterations)}
}
