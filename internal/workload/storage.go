package workload

import (
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// FioResult is one fio measurement.
type FioResult struct {
	Write      bool
	Bytes      int64
	Elapsed    sim.Duration
	Throughput float64 // bytes/sec
}

// Fio runs the §5.5.2 storage-throughput benchmark: sequential direct
// I/O of totalBytes in blockBytes chunks through the real block driver
// (the paper reads/writes 200 MB in 1 MB blocks with libaio).
func Fio(p *sim.Proc, o *guest.OS, write bool, totalBytes, blockBytes, startLBA int64) (FioResult, error) {
	blockSectors := blockBytes / disk.SectorSize
	src := disk.Synth{Seed: 0xF10, Label: "fio"}
	start := p.Now()
	for off := int64(0); off < totalBytes; off += blockBytes {
		lba := startLBA + off/disk.SectorSize
		if write {
			if err := o.WriteSectors(p, disk.Payload{LBA: lba, Count: blockSectors, Source: src}); err != nil {
				return FioResult{}, err
			}
		} else {
			if _, err := o.ReadSectors(p, lba, blockSectors, true); err != nil {
				return FioResult{}, err
			}
		}
	}
	elapsed := p.Now().Sub(start)
	return FioResult{
		Write:      write,
		Bytes:      totalBytes,
		Elapsed:    elapsed,
		Throughput: float64(totalBytes) / elapsed.Seconds(),
	}, nil
}

// IopingResult is one ioping measurement.
type IopingResult struct {
	Requests int
	Mean     sim.Duration
	P99      sim.Duration
}

// Ioping runs the §5.5.2 storage-latency benchmark: requests timed reads
// of reqBytes each at small random offsets within a 1 MB window, paced at
// interval (ioping's default pacing is what exposes the multiplexing
// blocking time: the guest looks idle between probes, so the background
// copy keeps the device busy).
func Ioping(p *sim.Proc, o *guest.OS, requests int, reqBytes int64, interval sim.Duration, baseLBA int64) (IopingResult, error) {
	var h metrics.Histogram
	rng := o.M.K.Rand()
	window := int64(1<<20) / disk.SectorSize
	count := reqBytes / disk.SectorSize
	for i := 0; i < requests; i++ {
		lba := baseLBA + rng.Int63n(window-count)
		start := p.Now()
		if _, err := o.ReadSectors(p, lba, count, true); err != nil {
			return IopingResult{}, err
		}
		h.Observe(p.Now().Sub(start))
		p.Sleep(interval)
	}
	return IopingResult{Requests: requests, Mean: h.Mean(), P99: h.Percentile(99)}, nil
}

// KernbenchResult is one kernel-compile measurement.
type KernbenchResult struct {
	Elapsed sim.Duration
}

// Kernbench runs the §5.4 kernel compile model: `make -j12 allnoconfig`
// takes ≈16 s on the testbed's bare metal — mostly CPU with a modest
// memory-bound share, plus object-file writes through the block driver
// whose collisions with the background copy produce the deployment-phase
// overhead the paper measures (+8%).
func Kernbench(p *sim.Proc, o *guest.OS) (KernbenchResult, error) {
	const (
		cpuWork    = 15 * sim.Second
		memShare   = 0.05
		segments   = 32
		writeBytes = 96 << 20 // object files + vmlinux
		writeLBA   = 48 << 21 // scratch region (24 GB in)
	)
	world := o.M.World
	src := disk.Synth{Seed: 0xC0DE, Label: "kernbench-objs"}
	start := p.Now()
	perSeg := cpuWork / segments
	writePerSeg := int64(writeBytes / segments / disk.SectorSize)
	cursor := int64(writeLBA)
	for s := 0; s < segments; s++ {
		p.Sleep(sim.Duration(float64(perSeg) * world.Slowdown(memShare)))
		if err := o.WriteSectors(p, disk.Payload{LBA: cursor, Count: writePerSeg, Source: src}); err != nil {
			return KernbenchResult{}, err
		}
		cursor += writePerSeg
	}
	return KernbenchResult{Elapsed: p.Now().Sub(start)}, nil
}
