package workload

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// ThreadsResult is one SysBench threads measurement.
type ThreadsResult struct {
	Threads int
	Elapsed sim.Duration
}

// SysbenchThreads runs the §5.5.1 thread benchmark: each of n threads
// performs 1000 acquire–yield–release sequences over 8 shared mutexes.
// Under a conventional VMM the lock-holder preemption problem appears: a
// handoff occasionally lands on a descheduled holder and stalls for a
// scheduling quantum. The effect grows with thread count.
func SysbenchThreads(p *sim.Proc, m *machine.Machine, threads int) ThreadsResult {
	const (
		iterations = 1000
		nMutex     = 8
		critical   = 3 * sim.Microsecond // work inside the lock
		think      = 2 * sim.Microsecond // work outside the lock
	)
	world := m.World
	mutexes := make([]*sim.Resource, nMutex)
	for i := range mutexes {
		mutexes[i] = sim.NewResource(m.K, "sb.mutex", 1)
	}
	// Lock-holder preemption as expected value: the chance a holder is
	// descheduled grows with runnable threads, and the expected stall per
	// critical section stretches the serialized path. (Discrete stall
	// events convoy the whole run and over-penalize; the expectation
	// reproduces the paper's smooth growth with thread count.)
	lhpDelay := sim.Duration(world.Overheads.LHPProb * float64(threads) * float64(world.Overheads.LHPStall))
	start := p.Now()
	done := 0
	doneSig := m.K.NewSignal("sb.done")
	for t := 0; t < threads; t++ {
		t := t
		m.K.Spawn("sb.thread", func(tp *sim.Proc) {
			for i := 0; i < iterations; i++ {
				mu := mutexes[(t+i)%nMutex]
				mu.Acquire(tp)
				if lhpDelay > 0 {
					tp.Sleep(lhpDelay)
				}
				tp.Sleep(sim.Duration(float64(critical) * world.Slowdown(0.2)))
				tp.Yield()
				mu.Release()
				tp.Sleep(sim.Duration(float64(think) * world.Slowdown(0.2)))
			}
			done++
			doneSig.Broadcast()
		})
	}
	p.WaitCond(doneSig, func() bool { return done == threads })
	return ThreadsResult{Threads: threads, Elapsed: p.Now().Sub(start)}
}

// MemoryResult is one SysBench memory measurement.
type MemoryResult struct {
	BlockBytes int64
	Elapsed    sim.Duration
	Rate       float64 // bytes/sec
}

// SysbenchMemory runs the §5.5.1 memory benchmark: repeatedly allocate a
// block and write it until totalBytes have been written. Allocation is
// CPU-bound; the writes are memory-bound, where nested paging and cache
// pollution bite (KVM: +35% at 16 KB blocks).
func SysbenchMemory(p *sim.Proc, m *machine.Machine, blockBytes, totalBytes int64) MemoryResult {
	const (
		allocCost = 900 * sim.Nanosecond // malloc + page touch per block
		memRate   = 6e9                  // bare-metal single-thread store bandwidth
	)
	world := m.World
	start := p.Now()
	blocks := totalBytes / blockBytes
	// Batch the simulated loop: every block costs alloc (low memShare)
	// plus the block write (pure memory work).
	allocTotal := sim.Duration(float64(allocCost) * float64(blocks) * world.Slowdown(0.2))
	writeTotal := sim.Duration(float64(sim.RateDuration(totalBytes, memRate)) * world.Slowdown(1.0))
	p.Sleep(allocTotal + writeTotal)
	elapsed := p.Now().Sub(start)
	return MemoryResult{
		BlockBytes: blockBytes,
		Elapsed:    elapsed,
		Rate:       float64(totalBytes) / elapsed.Seconds(),
	}
}
