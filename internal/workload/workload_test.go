package workload_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hw/ib"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func bareMachine(seed int64) (*sim.Kernel, *machine.Machine, *guest.OS) {
	k := sim.New(seed)
	cfg := machine.RX200S6("m0")
	cfg.MemBytes = 512 << 20
	m := machine.New(k, cfg)
	o := guest.NewOS("ubuntu", m)
	return k, m, o
}

func TestFioBareMetalRates(t *testing.T) {
	k, _, o := bareMachine(1)
	var read, write workload.FioResult
	k.Spawn("fio", func(p *sim.Proc) {
		if err := o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		var err error
		read, err = workload.Fio(p, o, false, 200<<20, 1<<20, 0)
		if err != nil {
			t.Error(err)
			return
		}
		write, err = workload.Fio(p, o, true, 200<<20, 1<<20, 1<<20)
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if r := read.Throughput / 1e6; r < 112 || r > 120 {
		t.Fatalf("bare-metal fio read = %.1f MB/s, want ~116.6", r)
	}
	if w := write.Throughput / 1e6; w < 107 || w > 115 {
		t.Fatalf("bare-metal fio write = %.1f MB/s, want ~111.9", w)
	}
}

func TestIopingBareMetal(t *testing.T) {
	k, _, o := bareMachine(1)
	var res workload.IopingResult
	k.Spawn("ioping", func(p *sim.Proc) {
		if err := o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		var err error
		res, err = workload.Ioping(p, o, 100, 4096, 100*sim.Millisecond, 4096)
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if res.Requests != 100 {
		t.Fatalf("requests = %d", res.Requests)
	}
	// Random 4 KB reads within 1 MB: seek-dominated, single-digit ms.
	if res.Mean < sim.Millisecond || res.Mean > 20*sim.Millisecond {
		t.Fatalf("ioping mean = %v, want a few ms", res.Mean)
	}
}

func TestKernbenchBareMetal(t *testing.T) {
	k, _, o := bareMachine(1)
	var res workload.KernbenchResult
	k.Spawn("kb", func(p *sim.Proc) {
		if err := o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		var err error
		res, err = workload.Kernbench(p, o)
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	got := res.Elapsed.Seconds()
	if got < 14.5 || got > 18 {
		t.Fatalf("bare-metal kernbench = %.1fs, want ~16", got)
	}
}

func TestSysbenchThreadsScaling(t *testing.T) {
	k, m, _ := bareMachine(1)
	var t1, t24 workload.ThreadsResult
	k.Spawn("sb", func(p *sim.Proc) {
		t1 = workload.SysbenchThreads(p, m, 1)
		t24 = workload.SysbenchThreads(p, m, 24)
	})
	k.Run()
	if t24.Elapsed <= t1.Elapsed {
		t.Fatalf("24 threads (%v) not slower than 1 (%v): no contention", t24.Elapsed, t1.Elapsed)
	}
}

func TestSysbenchThreadsLHP(t *testing.T) {
	elapsed := func(lhp bool) sim.Duration {
		k, m, _ := bareMachine(1)
		if lhp {
			m.World.Overheads.LHPProb = 5e-5
			m.World.Overheads.LHPStall = 1500 * sim.Microsecond
		}
		var r workload.ThreadsResult
		k.Spawn("sb", func(p *sim.Proc) { r = workload.SysbenchThreads(p, m, 24) })
		k.Run()
		return r.Elapsed
	}
	bm, kvm := elapsed(false), elapsed(true)
	ratio := float64(kvm) / float64(bm)
	if ratio < 1.35 || ratio > 1.8 {
		t.Fatalf("LHP overhead ratio = %.2f, want ~1.68", ratio)
	}
	t.Logf("LHP overhead at 24 threads: %.0f%%", (ratio-1)*100)
}

func TestSysbenchMemoryPenalty(t *testing.T) {
	k, m, _ := bareMachine(1)
	var bm, virt workload.MemoryResult
	k.Spawn("sb", func(p *sim.Proc) {
		bm = workload.SysbenchMemory(p, m, 16<<10, 1<<20)
		m.World.Overheads.MemPenalty = 0.42
		virt = workload.SysbenchMemory(p, m, 16<<10, 1<<20)
	})
	k.Run()
	ratio := bm.Rate / virt.Rate
	if ratio < 1.3 || ratio > 1.5 {
		t.Fatalf("memory penalty ratio at 16K = %.2f, want ~1.42", ratio)
	}
	// Smaller blocks: allocation overhead dilutes the memory penalty.
	k2 := sim.New(2)
	m2 := machine.New(k2, machine.RX200S6("m2"))
	var bm1k, virt1k workload.MemoryResult
	k2.Spawn("sb", func(p *sim.Proc) {
		bm1k = workload.SysbenchMemory(p, m2, 1<<10, 1<<20)
		m2.World.Overheads.MemPenalty = 0.35
		virt1k = workload.SysbenchMemory(p, m2, 1<<10, 1<<20)
	})
	k2.Run()
	if r1k := bm1k.Rate / virt1k.Rate; r1k >= ratio {
		t.Fatalf("1K penalty %.2f not smaller than 16K penalty %.2f", r1k, ratio)
	}
}

func TestYCSBMemcachedBareMetal(t *testing.T) {
	k, _, o := bareMachine(1)
	y := workload.NewYCSB(o, workload.Memcached())
	k.Spawn("ycsb", func(p *sim.Proc) {
		if err := o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		y.Run(p, 30*sim.Second)
	})
	k.Run()
	tput := y.Throughput.Mean()
	if tput < 35000 || tput > 38000 {
		t.Fatalf("bare-metal memcached = %.0f T/s, want ~36500", tput)
	}
	lat := y.Latency.Mean()
	if lat < 260 || lat > 285 {
		t.Fatalf("bare-metal memcached latency = %.0f µs, want ~271", lat)
	}
}

func TestYCSBCassandraWritesDisk(t *testing.T) {
	k, m, o := bareMachine(1)
	y := workload.NewYCSB(o, workload.Cassandra())
	k.Spawn("ycsb", func(p *sim.Proc) {
		if err := o.Drv.Init(p); err != nil {
			t.Error(err)
			return
		}
		y.Run(p, 30*sim.Second)
	})
	k.Run()
	if m.Disk.BytesWritten.Value() < 50<<20 {
		t.Fatalf("cassandra wrote only %d bytes in 30s", m.Disk.BytesWritten.Value())
	}
	if tput := y.Throughput.Mean(); tput < 55000 || tput > 63000 {
		t.Fatalf("bare-metal cassandra = %.0f T/s, want ~60000", tput)
	}
}

func TestMPICollectivesBareMetal(t *testing.T) {
	k := sim.New(1)
	fabric := ib.QDR4X(k)
	var machines []*machine.Machine
	for i := 0; i < 10; i++ {
		cfg := machine.RX200S6("n")
		cfg.MemBytes = 256 << 20
		m := machine.New(k, cfg)
		m.AttachIB(fabric)
		machines = append(machines, m)
	}
	cl, err := workload.NewMPICluster(k, machines)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[workload.Collective]sim.Duration)
	k.Spawn("mpi", func(p *sim.Proc) {
		for _, c := range workload.AllCollectives() {
			results[c] = cl.Latency(p, c, 16<<10, 20)
		}
	})
	k.Run()
	// Allgather (9 ring steps) must cost more than Allreduce (4 rounds).
	if results[workload.Allgather] <= results[workload.Allreduce] {
		t.Fatalf("Allgather %v not slower than Allreduce %v",
			results[workload.Allgather], results[workload.Allreduce])
	}
	for c, d := range results {
		if d <= 0 {
			t.Fatalf("%v latency is zero", c)
		}
	}
}

func TestMPIJitterAmplification(t *testing.T) {
	run := func(jitter sim.Duration) sim.Duration {
		k := sim.New(5)
		fabric := ib.QDR4X(k)
		var machines []*machine.Machine
		for i := 0; i < 10; i++ {
			cfg := machine.RX200S6("n")
			cfg.MemBytes = 256 << 20
			m := machine.New(k, cfg)
			m.AttachIB(fabric)
			m.World.Overheads.SchedJitter = jitter
			machines = append(machines, m)
		}
		cl, _ := workload.NewMPICluster(k, machines)
		var d sim.Duration
		k.Spawn("mpi", func(p *sim.Proc) { d = cl.Latency(p, workload.Allgather, 16<<10, 50) })
		k.Run()
		return d
	}
	bm := run(0)
	kvm := run(20 * sim.Microsecond)
	ratio := float64(kvm) / float64(bm)
	if ratio < 1.5 {
		t.Fatalf("Allgather under jitter = %.2fx bare metal, want large amplification (~2.35)", ratio)
	}
	t.Logf("Allgather jitter amplification: %.2fx", ratio)
}

func TestRDMABandwidthSaturates(t *testing.T) {
	k := sim.New(1)
	fabric := ib.QDR4X(k)
	a, b := fabric.NewHCA("a"), fabric.NewHCA("b")
	var res workload.RDMABwResult
	k.Spawn("bw", func(p *sim.Proc) {
		res = workload.RDMABandwidth(p, a, b, 64<<10, 1000, 16)
	})
	k.Run()
	if gbps := res.Throughput / 1e9; gbps < 3.0 || gbps > 3.3 {
		t.Fatalf("RDMA bw = %.2f GB/s, want ~3.2 (saturated)", gbps)
	}
}

func TestRDMALatencyExtraCost(t *testing.T) {
	measure := func(extra sim.Duration) sim.Duration {
		k := sim.New(1)
		fabric := ib.QDR4X(k)
		a, b := fabric.NewHCA("a"), fabric.NewHCA("b")
		a.ExtraLatency, b.ExtraLatency = extra, extra
		var res workload.RDMALatResult
		k.Spawn("lat", func(p *sim.Proc) { res = workload.RDMALatency(p, a, b, 64<<10, 1000) })
		k.Run()
		return res.Mean
	}
	bm := measure(0)
	kvm := measure(2600 * sim.Nanosecond)
	ratio := float64(kvm) / float64(bm)
	if ratio < 1.15 || ratio > 1.35 {
		t.Fatalf("RDMA latency ratio = %.3f, want ~1.236", ratio)
	}
	t.Logf("RDMA latency: bm=%v kvm=%v (+%.1f%%)", bm, kvm, (ratio-1)*100)
}
