package bmcast

// Allocation regression tests for the hot data paths. These pin the
// free-list/pool work in internal/sim and internal/aoe: if a future change
// reintroduces per-event or per-request garbage, these fail long before a
// profile would be taken. The kernel's own zero-alloc contract is pinned in
// internal/sim; here we hold the whole client↔server AoE stack to a budget.

import (
	"testing"

	"repro/internal/aoe"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/guest"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/vblade"
)

// TestAoEReadRoundTripAllocs drives single-fragment reads through the
// initiator, switch, and vblade server, and bounds the steady-state
// allocations of one complete round trip. The budget has headroom over the
// measured value (which includes signal waiters and wire frames); the
// pre-pooling implementation sat several times higher.
func TestAoEReadRoundTripAllocs(t *testing.T) {
	k := sim.New(1)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	cl := nic.New(k, "cl", nic.IntelPro1000, 2, sw.Connect(ethernet.GigabitJumbo()))
	sv := nic.New(k, "sv", nic.IntelX540, 1, sw.Connect(ethernet.GigabitJumbo()))
	img := disk.NewSynthImage("img", 64<<20, 7)
	srv := vblade.NewServer(k, sv, 2)
	srv.AddTarget(0, 0, img)
	srv.Start()
	in := aoe.NewInitiator(k, cl, 1, 0, 0)

	reqs := sim.NewQueue[int64](k, "req")
	k.Spawn("client", func(p *sim.Proc) {
		for {
			lba, ok := reqs.Pop(p)
			if !ok {
				return
			}
			if _, err := in.Read(p, lba, 8); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Run() // client parks on the empty queue

	lba := int64(0)
	roundTrip := func() {
		reqs.Push(lba)
		lba = (lba + 8) % (1 << 16)
		k.Run()
	}
	for i := 0; i < 64; i++ { // warm the request pool, free lists, rings
		roundTrip()
	}
	avg := testing.AllocsPerRun(256, roundTrip)

	const budget = 40
	if avg > budget {
		t.Fatalf("one AoE read round trip allocates %.1f objects, budget %d", avg, budget)
	}
	t.Logf("AoE read round trip: %.1f allocs (budget %d)", avg, budget)
}

// TestMediatedReadRedirectAllocs bounds the full copy-on-read redirect: a
// guest read of an unfilled range travels through the storage mediator, the
// VMM, AoE (pooled frames end to end), the vblade server, and the local
// write-through. This is the fleet fast path's per-miss cost; the budget
// matches the AoE round trip's and the measured value sits far below it.
func TestMediatedReadRedirectAllocs(t *testing.T) {
	cfg := testbed.DefaultConfig()
	cfg.ImageBytes = 8 << 30
	tb := testbed.New(cfg)
	n := tb.AddNode(cfg)
	n.M.Firmware.InitTime = sim.Second
	vcfg := core.DefaultConfig()
	vcfg.WriteInterval = sim.Hour // keep the background copy out of the way
	bp := guest.DefaultBootProfile()
	bp.TotalBytes = 1 << 20
	bp.CPUTime = 100 * sim.Millisecond
	bp.SpanSectors = 1 << 20
	tb.K.Spawn("prep", func(p *sim.Proc) {
		if _, err := tb.DeployBMcast(p, n, vcfg, bp); err != nil {
			t.Error(err)
		}
		tb.K.Stop()
	})
	tb.K.Run()
	if t.Failed() {
		t.FailNow()
	}

	reqs := sim.NewQueue[int64](tb.K, "req")
	completed := 0
	tb.K.Spawn("reader", func(p *sim.Proc) {
		for {
			lba, ok := reqs.Pop(p)
			if !ok {
				return
			}
			if _, err := n.OS.ReadSectors(p, lba, 8, true); err != nil {
				t.Error(err)
				return
			}
			completed++
		}
	})

	// Each redirect targets a fresh unfilled stripe well past everything the
	// abbreviated boot touched, so every read is a genuine miss.
	lba := int64(1 << 21)
	want := 0
	redirect := func() {
		reqs.Push(lba)
		lba += 8
		want++
		for completed < want && tb.K.Pending() > 0 {
			tb.K.RunUntil(tb.K.Now().Add(sim.Millisecond))
		}
	}
	for i := 0; i < 64; i++ { // warm pools, free lists, rings, store
		redirect()
	}
	avg := testing.AllocsPerRun(256, redirect)

	const budget = 40
	if avg > budget {
		t.Fatalf("one mediated read redirect allocates %.1f objects, budget %d", avg, budget)
	}
	t.Logf("mediated read redirect: %.1f allocs (budget %d)", avg, budget)
}
