package bmcast

// Allocation regression tests for the hot data paths. These pin the
// free-list/pool work in internal/sim and internal/aoe: if a future change
// reintroduces per-event or per-request garbage, these fail long before a
// profile would be taken. The kernel's own zero-alloc contract is pinned in
// internal/sim; here we hold the whole client↔server AoE stack to a budget.

import (
	"testing"

	"repro/internal/aoe"
	"repro/internal/ethernet"
	"repro/internal/hw/disk"
	"repro/internal/hw/nic"
	"repro/internal/sim"
	"repro/internal/vblade"
)

// TestAoEReadRoundTripAllocs drives single-fragment reads through the
// initiator, switch, and vblade server, and bounds the steady-state
// allocations of one complete round trip. The budget has headroom over the
// measured value (which includes signal waiters and wire frames); the
// pre-pooling implementation sat several times higher.
func TestAoEReadRoundTripAllocs(t *testing.T) {
	k := sim.New(1)
	sw := ethernet.NewSwitch(k, "sw", 5*sim.Microsecond)
	cl := nic.New(k, "cl", nic.IntelPro1000, 2, sw.Connect(ethernet.GigabitJumbo()))
	sv := nic.New(k, "sv", nic.IntelX540, 1, sw.Connect(ethernet.GigabitJumbo()))
	img := disk.NewSynthImage("img", 64<<20, 7)
	srv := vblade.NewServer(k, sv, 2)
	srv.AddTarget(0, 0, img)
	srv.Start()
	in := aoe.NewInitiator(k, cl, 1, 0, 0)

	reqs := sim.NewQueue[int64](k, "req")
	k.Spawn("client", func(p *sim.Proc) {
		for {
			lba, ok := reqs.Pop(p)
			if !ok {
				return
			}
			if _, err := in.Read(p, lba, 8); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Run() // client parks on the empty queue

	lba := int64(0)
	roundTrip := func() {
		reqs.Push(lba)
		lba = (lba + 8) % (1 << 16)
		k.Run()
	}
	for i := 0; i < 64; i++ { // warm the request pool, free lists, rings
		roundTrip()
	}
	avg := testing.AllocsPerRun(256, roundTrip)

	const budget = 40
	if avg > budget {
		t.Fatalf("one AoE read round trip allocates %.1f objects, budget %d", avg, budget)
	}
	t.Logf("AoE read round trip: %.1f allocs (budget %d)", avg, budget)
}
